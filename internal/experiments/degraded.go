package experiments

// Degraded-service validation (§III-C): Eqs. 7 and 8 describe a miner's
// winning probability when its edge request is transferred to the cloud
// or rejected outright. This experiment rebuilds both scenarios on the
// physical race simulator and compares three numbers per scenario: the
// paper's formula, the exact physical probability, and the empirical
// share from simulated rounds.

import (
	"fmt"

	"minegame/internal/chain"
	"minegame/internal/miner"
	"minegame/internal/numeric"
	"minegame/internal/sim"
)

func runDegraded(cfg Config) (Result, error) {
	rng := sim.NewRNG(cfg.Seed, "degraded")
	// The focal miner is miner 0; the others mine at their requested
	// split. Delay chosen so the all-network collision rate is β = 0.2.
	own := numeric.Point2{E: 5, C: 20}
	peers := []numeric.Point2{{E: 4, C: 24}, {E: 6, C: 18}, {E: 3, C: 30}, {E: 5, C: 22}}
	delay := chain.DelayForBeta(defaultBeta, blockInterval)
	rounds := cfg.rounds(80000)

	buildRace := func(focal numeric.Point2) chain.RaceConfig {
		race := chain.RaceConfig{
			Interval:    blockInterval,
			CloudDelay:  delay,
			Allocations: []chain.Allocation{{MinerID: 0, Edge: focal.E, Cloud: focal.C}},
		}
		for i, p := range peers {
			race.Allocations = append(race.Allocations, chain.Allocation{MinerID: i + 1, Edge: p.E, Cloud: p.C})
		}
		return race
	}
	env := miner.Env{}
	for _, p := range peers {
		env.EdgeOthers += p.E
		env.CloudOthers += p.C
	}

	t := Table{
		ID:      "degraded",
		Title:   "degraded service forms (Eqs. 7–8): paper formula vs physical probability vs simulation",
		Columns: []string{"scenario", "paper_W", "physical_W", "simulated_W"},
		Notes: []string{
			"scenario codes: 1 = edge request transferred to the cloud (Eq. 7), 2 = edge request rejected (Eq. 8)",
			"paper formulas use the all-network collision rate β = 0.2; the physical race only lets EDGE rivals beat in-flight cloud blocks, so the formulas understate the degraded miner's chances",
		},
	}

	measure := func(focal numeric.Point2) (float64, float64, error) {
		race := buildRace(focal)
		phys := chain.PhysicalWinProbs(race)
		stats, err := chain.SimulateRounds(race, rounds, rng)
		if err != nil {
			return 0, 0, err
		}
		return phys[0], stats.WinProb(0), nil
	}

	// Scenario 1: transferred — the focal miner's edge units mine at the
	// cloud (allocation [0, e+c]).
	transferred := numeric.Point2{E: 0, C: own.E + own.C}
	physT, simT, err := measure(transferred)
	if err != nil {
		return Result{}, fmt.Errorf("degraded transfer: %w", err)
	}
	t.AddRow(1, miner.WinProbTransferred(defaultBeta, own, env), physT, simT)

	// Scenario 2: rejected — the focal miner's edge units vanish
	// (allocation [0, c]).
	rejected := numeric.Point2{E: 0, C: own.C}
	physR, simR, err := measure(rejected)
	if err != nil {
		return Result{}, fmt.Errorf("degraded reject: %w", err)
	}
	t.AddRow(2, miner.WinProbRejected(defaultBeta, own, env), physR, simR)

	return Result{Tables: []Table{t}}, nil
}
