package experiments

// Wealth-dynamics experiment: an emergent-behaviour study the static game
// cannot express. Budgets evolve with realized mining outcomes — each
// period the miners play the heterogeneous subgame equilibrium at their
// CURRENT budgets, the allocation mines a block on the physical race
// simulator, the winner banks the reward and everyone pays their bill.
// Because a larger budget buys more computing power and hence a higher
// winning probability, wealth compounds: the experiment tracks the Gini
// coefficient of the budget distribution over time (mining
// centralization pressure).

import (
	"fmt"

	"minegame/internal/chain"
	"minegame/internal/core"
	"minegame/internal/game"
	"minegame/internal/numeric"
	"minegame/internal/sim"
)

func runWealth(cfg Config) (Result, error) {
	const (
		periods     = 150
		budgetFloor = 20.0
		startBudget = 120.0
	)
	gameCfg := baseConfig()
	prices := defaultPrices()
	budgets := make([]float64, gameCfg.N)
	for i := range budgets {
		budgets[i] = startBudget
	}
	rng := sim.NewRNG(cfg.Seed, "wealth")
	delay := chain.DelayForBeta(gameCfg.Beta, blockInterval)

	t := Table{
		ID:      "wealth",
		Title:   "budget dynamics under realized mining: centralization pressure",
		Columns: []string{"period", "gini", "min_budget", "max_budget", "total_budget"},
	}
	record := func(period int) {
		s := summarizeBudgets(budgets)
		t.AddRow(float64(period), s.gini, s.min, s.max, s.total)
	}
	record(0)
	steps := cfg.rounds(periods)
	for period := 1; period <= steps; period++ {
		work := gameCfg
		work.Budgets = append([]float64(nil), budgets...)
		eq, err := core.SolveMinerEquilibrium(work, prices, game.NEOptions{MaxIter: 200})
		if err != nil {
			return Result{}, fmt.Errorf("wealth period %d: %w", period, err)
		}
		race := chain.RaceConfig{Interval: blockInterval, CloudDelay: delay}
		var anyPower bool
		for i, r := range eq.Requests {
			race.Allocations = append(race.Allocations, chain.Allocation{MinerID: i, Edge: r.E, Cloud: r.C})
			if r.E+r.C > 0 {
				anyPower = true
			}
		}
		params := work.Params(prices)
		winner := -1
		if anyPower {
			round, err := chain.SimulateRound(race, rng)
			if err != nil {
				return Result{}, fmt.Errorf("wealth race %d: %w", period, err)
			}
			winner = round.WinnerID
		}
		for i := range budgets {
			budgets[i] -= params.Spend(eq.Requests[i])
			if i == winner {
				budgets[i] += gameCfg.Reward
			}
			if budgets[i] < budgetFloor {
				budgets[i] = budgetFloor
			}
		}
		if period%10 == 0 || period == steps {
			record(period)
		}
	}
	t.Notes = append(t.Notes,
		"budgets compound: a round's winner can afford more computing power next round, raising its winning probability",
		"the centralization pressure is TRANSIENT: once every budget exceeds the interior-optimum spend (≈150 at these prices), extra wealth no longer buys hash power and the Gini coefficient drifts back down",
		fmt.Sprintf("budget floor %g models the mobile device's own residual capacity", budgetFloor))
	return Result{Tables: []Table{t}}, nil
}

type budgetSummary struct {
	gini, min, max, total float64
}

func summarizeBudgets(budgets []float64) budgetSummary {
	s := budgetSummary{min: budgets[0], max: budgets[0]}
	for _, b := range budgets {
		s.total += b
		if b < s.min {
			s.min = b
		}
		if b > s.max {
			s.max = b
		}
	}
	s.gini = numeric.Gini(budgets)
	return s
}
