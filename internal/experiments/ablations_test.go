package experiments

import (
	"math"
	"testing"
)

func TestAblBetaShapes(t *testing.T) {
	res := mustRun(t, "ablbeta", quickCfg())
	tab := res.Tables[0]
	exo := column(t, tab, "beta_exogenous")
	star := column(t, tab, "beta_star")
	eExo := column(t, tab, "E_exogenous")
	eStar := column(t, tab, "E_star")
	for i := range exo {
		if star[i] >= exo[i] {
			t.Errorf("row %d: β* = %g not below exogenous %g", i, star[i], exo[i])
		}
		// At the default prices the fixed-point map is a contraction at
		// zero (slope h·P_c/(P_e−P_c)·D/τ < 1), so the edge premium
		// unravels completely: β* ≈ 0 and E* ≈ 0 while the exogenous-β
		// game sustains substantial edge demand.
		if star[i] > 1e-6 {
			t.Errorf("row %d: β* = %g, want the unraveled fixed point ≈0", i, star[i])
		}
		if eStar[i] > 0.01 {
			t.Errorf("row %d: self-consistent edge demand %g, want ≈0", i, eStar[i])
		}
		if eExo[i] < 10 {
			t.Errorf("row %d: exogenous edge demand %g unexpectedly small", i, eExo[i])
		}
	}
}

func TestAblHShapes(t *testing.T) {
	res := mustRun(t, "ablh", quickCfg())
	tab := res.Tables[0]
	h := column(t, tab, "h_star")
	assertMonotone(t, h, true, 1e-9, "h* vs capacity")
	for i, v := range h {
		if v <= 0 || v >= 1 {
			t.Errorf("row %d: h* = %g outside (0,1)", i, v)
		}
	}
	// Generous provisioning approaches perfect reliability.
	if last := h[len(h)-1]; last < 0.99 {
		t.Errorf("h* at capacity 100 = %g, want ≈1", last)
	}
	// Edge demand grows with reliability.
	assertMonotone(t, column(t, tab, "E_star"), true, 1e-6, "E* vs capacity")
}

func TestAblDiscShapes(t *testing.T) {
	res := mustRun(t, "abldisc", quickCfg())
	tab := res.Tables[0]
	meanRound := column(t, tab, "mean_round")
	meanCeil := column(t, tab, "mean_ceil")
	eRound := column(t, tab, "e_star_round")
	eCeil := column(t, tab, "e_star_ceil")
	eFixed := column(t, tab, "e_star_fixed")
	for i := range meanRound {
		if math.Abs(meanRound[i]-10) > 0.05 {
			t.Errorf("row %d: rounded mean %g drifted from 10", i, meanRound[i])
		}
		if meanCeil[i] < meanRound[i]+0.3 {
			t.Errorf("row %d: ceiling mean %g should exceed rounded %g by ≈0.5", i, meanCeil[i], meanRound[i])
		}
		if eRound[i] <= eFixed[i] {
			t.Errorf("row %d: rounded e* %g should exceed fixed %g", i, eRound[i], eFixed[i])
		}
		if eCeil[i] >= eRound[i] {
			t.Errorf("row %d: ceiling e* %g should fall below rounded %g (extra mean rivals)",
				i, eCeil[i], eRound[i])
		}
	}
}

func TestAblGNEShapes(t *testing.T) {
	res := mustRun(t, "ablgne", quickCfg())
	tab := res.Tables[0]
	emax := column(t, tab, "E_max")
	ev := column(t, tab, "E_variational")
	eg := column(t, tab, "E_gne")
	uminV := column(t, tab, "umin_var")
	umaxV := column(t, tab, "umax_var")
	for i := range emax {
		want := math.Min(40, emax[i])
		if math.Abs(ev[i]-want) > 0.5 {
			t.Errorf("row %d: variational E %g, want ≈%g", i, ev[i], want)
		}
		if eg[i] > emax[i]+1e-6 {
			t.Errorf("row %d: GNE demand %g violates capacity %g", i, eg[i], emax[i])
		}
		// Homogeneous miners are treated symmetrically by the
		// variational solution.
		if math.Abs(umaxV[i]-uminV[i]) > 0.02*(1+math.Abs(umaxV[i])) {
			t.Errorf("row %d: variational utilities spread [%g, %g]", i, uminV[i], umaxV[i])
		}
	}
}

func TestAblLeadersShapes(t *testing.T) {
	res := mustRun(t, "abllead", quickCfg())
	tab := res.Tables[0]
	peSeq := column(t, tab, "pe_sequential")
	pcSeq := column(t, tab, "pc_sequential")
	conv := column(t, tab, "converged")
	anyCycle := false
	for i := range conv {
		if conv[i] == 0 {
			anyCycle = true
		}
		if peSeq[i] <= pcSeq[i] {
			t.Errorf("row %d: sequential ESP price %g not above CSP %g", i, peSeq[i], pcSeq[i])
		}
	}
	if !anyCycle {
		t.Log("note: every simultaneous damping converged this run; cycling is damping-dependent")
	}
}

func TestAblRLShapes(t *testing.T) {
	res := mustRun(t, "ablrl", quickCfg())
	tab := res.Tables[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("want 5 learners, got %d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] < 0 || row[1] > 25 || row[2] < 0 || row[2] > 50 {
			t.Errorf("learner %g produced an out-of-grid strategy (%g, %g)", row[0], row[1], row[2])
		}
	}
}

func TestAblEnvShapes(t *testing.T) {
	res := mustRun(t, "ablenv", quickCfg())
	tab := res.Tables[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("want 2 environments, got %d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1]+row[2] <= 0 {
			t.Errorf("environment %g learned the empty strategy", row[0])
		}
	}
}

func TestAblBillingShapes(t *testing.T) {
	res := mustRun(t, "ablbill", quickCfg())
	tab := res.Tables[0]
	spend := column(t, tab, "miner_spend_per_round")
	esp := column(t, tab, "esp_revenue")
	if len(spend) != 2 {
		t.Fatalf("want 2 policies, got %d rows", len(spend))
	}
	// Served billing must charge miners less (transfers re-billed at the
	// cheaper cloud price) and cost the ESP its transfer markup.
	if spend[1] >= spend[0] {
		t.Errorf("served billing %g should undercut requested billing %g", spend[1], spend[0])
	}
	if esp[1] >= esp[0] {
		t.Errorf("ESP revenue under served billing %g should fall below %g", esp[1], esp[0])
	}
	// Conservation: spend equals total provider revenue per policy.
	csp := column(t, tab, "csp_revenue")
	for i := range spend {
		if math.Abs(spend[i]-(esp[i]+csp[i])) > 1e-6 {
			t.Errorf("policy %d: spend %g != revenues %g", i+1, spend[i], esp[i]+csp[i])
		}
	}
}
