package experiments

import (
	"minegame/internal/core"
	"minegame/internal/netmodel"
)

// Default parameters for the evaluation. The paper fixes a 5-miner
// network with budget 200 (§VI) but omits most constants; these choices
// are documented in DESIGN.md and used consistently across runners.
const (
	defaultN        = 5
	defaultBudget   = 200.0
	defaultReward   = 1000.0
	defaultBeta     = 0.2
	defaultH        = 0.7
	defaultCostE    = 2.0
	defaultCostC    = 1.0
	defaultCapacity = 60.0
	defaultPriceE   = 8.0
	defaultPriceC   = 4.0
	// blockInterval is the network's mean block time in seconds
	// (Bitcoin-like; only ratios to the propagation delay matter).
	blockInterval = 600.0
)

// baseConfig returns the default connected-mode game.
func baseConfig() core.Config {
	return core.Config{
		N:            defaultN,
		Budgets:      []float64{defaultBudget},
		Reward:       defaultReward,
		Beta:         defaultBeta,
		SatisfyProb:  defaultH,
		Mode:         netmodel.Connected,
		EdgeCapacity: defaultCapacity,
		CostE:        defaultCostE,
		CostC:        defaultCostC,
	}
}

// standaloneConfig returns the default standalone-mode game.
func standaloneConfig() core.Config {
	cfg := baseConfig()
	cfg.Mode = netmodel.Standalone
	return cfg
}

func defaultPrices() core.Prices {
	return core.Prices{Edge: defaultPriceE, Cloud: defaultPriceC}
}
