package experiments

import (
	"runtime"
	"strings"
	"testing"

	"minegame/internal/parallel"
)

func TestRunTopoQuick(t *testing.T) {
	res, err := runTopo(Config{Seed: 1, Quick: true, Parallel: 1})
	if err != nil {
		t.Fatalf("runTopo: %v", err)
	}
	if len(res.Tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(res.Tables))
	}
	tab := res.Tables[0]
	if tab.ID != "topo" || len(tab.Rows) != 3 {
		t.Fatalf("table %q has %d rows, want topo/3", tab.ID, len(tab.Rows))
	}
	col := func(name string) int {
		for i, c := range tab.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	spread, dprice := col("beta_spread"), col("dprice_vs_scalar")
	bMin, bMax := col("beta_min"), col("beta_max")
	for i, row := range tab.Rows {
		if row[bMin] < 0 || row[bMax] >= 1 || row[bMin] > row[bMax] {
			t.Errorf("row %d: betas [%g, %g] outside [0, 1) or inverted", i, row[bMin], row[bMax])
		}
	}
	// The star's near/far placement must spread the fork rates and move
	// prices more than the symmetric ring does.
	ring, star := tab.Rows[0], tab.Rows[1]
	if star[spread] <= ring[spread] {
		t.Errorf("star beta spread %g should exceed ring %g", star[spread], ring[spread])
	}
	if star[dprice] <= ring[dprice] {
		t.Errorf("star price shift %g should exceed ring %g", star[dprice], ring[dprice])
	}
}

// TestRunTopoByteIdenticalAcrossWorkerCounts: the race replicas fan out
// over the process-default pool, so the whole rendered experiment must
// be byte-identical at any worker setting.
func TestRunTopoByteIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment runs")
	}
	render := func(workers int) string {
		prev := parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(prev)
		res, err := runTopo(Config{Seed: 1, Quick: true, Parallel: 1})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var b strings.Builder
		if err := res.Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	want := render(1)
	if got := render(runtime.GOMAXPROCS(0) + 2); got != want {
		t.Error("topo experiment output differs across worker counts")
	}
}
