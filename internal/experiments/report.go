// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): each runner produces numeric series with the same
// quantities the paper plots, rendered as aligned text or CSV. The
// expected qualitative shapes are documented per runner and asserted in
// the package tests; EXPERIMENTS.md records paper-vs-measured outcomes.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"minegame/internal/core"
	"minegame/internal/miner"
	"minegame/internal/parallel"
)

// Table is one numeric series or grid of an experiment.
type Table struct {
	ID      string   // e.g. "fig4"
	Title   string   // human-readable caption
	Columns []string // column headers
	Rows    [][]float64
	Notes   []string // free-form observations appended to the rendering
}

// AddRow appends one row; the value count must match the columns.
func (t *Table) AddRow(vals ...float64) {
	row := make([]float64, len(vals))
	copy(row, vals)
	t.Rows = append(t.Rows, row)
}

// Column returns the values of the named column.
func (t *Table) Column(name string) ([]float64, error) {
	for j, c := range t.Columns {
		if c == name {
			out := make([]float64, len(t.Rows))
			for i, row := range t.Rows {
				out[i] = row[j]
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("experiments: table %s has no column %q", t.ID, name)
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for j, c := range t.Columns {
		widths[j] = len(c)
	}
	for i, row := range t.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := strconv.FormatFloat(v, 'g', 6, 64)
			cells[i][j] = s
			if j < len(widths) && len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	var b strings.Builder
	for j, c := range t.Columns {
		if j > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%*s", widths[j], c)
	}
	b.WriteByte('\n')
	for i := range cells {
		for j, s := range cells[i] {
			if j > 0 {
				b.WriteString("  ")
			}
			width := 0
			if j < len(widths) {
				width = widths[j]
			}
			fmt.Fprintf(&b, "%*s", width, s)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavored Markdown section:
// a heading, the data as a pipe table, and the notes as bullets.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		for j := range cells {
			if j < len(row) {
				cells[j] = strconv.FormatFloat(row[j], 'g', 6, 64)
			}
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes every table of the result as Markdown.
func (r Result) RenderMarkdown(w io.Writer) error {
	for i := range r.Tables {
		if err := r.Tables[i].RenderMarkdown(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the table as CSV (headers + rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	rec := make([]string, len(t.Columns))
	for _, row := range t.Rows {
		for j := range rec {
			if j < len(row) {
				rec[j] = strconv.FormatFloat(row[j], 'g', 10, 64)
			} else {
				rec[j] = ""
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Result is one experiment's output.
type Result struct {
	Tables []Table
}

// Render writes all tables.
func (r Result) Render(w io.Writer) error {
	for i := range r.Tables {
		if err := r.Tables[i].Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Runner regenerates one paper artifact.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) (Result, error)
}

// Config tunes experiment scale.
type Config struct {
	// Seed drives every stochastic component.
	Seed int64
	// Quick shrinks simulation rounds and learning episodes by roughly
	// an order of magnitude (used by unit tests; benchmarks and the CLI
	// run at full scale).
	Quick bool
	// Parallel bounds the harness's worker count: seed replication and
	// the grid-shaped sweeps (fig4–fig8, sens, ablbeta) fan their
	// independent points out over this many workers. 0 picks the process
	// default (runtime.GOMAXPROCS(0) unless parallel.SetDefaultWorkers
	// overrode it); 1 forces the exact sequential path. Every table is
	// byte-identical at any worker count — see DESIGN.md "Deterministic
	// parallelism".
	Parallel int
	// CertifyAfterSolve, when non-nil, independently certifies the miner
	// equilibria behind the subgame runners (fig4–fig7, headline, tab2)
	// and is threaded into the Stackelberg solver's own hook for the
	// two-stage runners (fig8, headline claims 5–6).
	// internal/verify.NECertifier supplies the standard implementation.
	// Certification runs on final solves only, never on leader-search
	// probes, so enabling it cannot change any table — it can only fail
	// the run when an equilibrium flunks its certificate.
	CertifyAfterSolve core.Certifier
	// CertifyClassedAfterSolve is CertifyAfterSolve for the classed
	// (mean-field compressed) solves of the "meanfield" runner, whose
	// equilibria never materialize a full MinerEquilibrium.
	// internal/verify.ClassedNECertifier supplies the standard
	// implementation. Same contract: final solves only, a failure aborts
	// the run.
	CertifyClassedAfterSolve core.ClassedCertifier
	// Miners overrides the largest population the "meanfield" runner
	// scales to (0 keeps the default 10⁶; Quick caps it regardless).
	Miners int
	// Classes caps the number of budget classes the "meanfield" runner
	// compresses to via quantile binning (0 means exact deduplication).
	Classes int
}

// certifyClassed runs the configured classed-equilibrium certifier, if
// any.
func (c Config) certifyClassed(cfg core.Config, cp miner.ClassedPopulation, p core.Prices, eq core.ClassedEquilibrium) error {
	if c.CertifyClassedAfterSolve == nil {
		return nil
	}
	return c.CertifyClassedAfterSolve(cfg, cp, p, eq)
}

// stackClassedOpts threads the harness's classed certifier into the
// classed two-stage solver's options.
func (c Config) stackClassedOpts(o core.StackelbergOptions) core.StackelbergOptions {
	o.CertifyClassedAfterSolve = c.CertifyClassedAfterSolve
	return o
}

// certify runs the configured equilibrium certifier, if any.
func (c Config) certify(cfg core.Config, p core.Prices, eq core.MinerEquilibrium) error {
	if c.CertifyAfterSolve == nil {
		return nil
	}
	return c.CertifyAfterSolve(cfg, p, eq)
}

// stackOpts threads the harness certifier into solver options.
func (c Config) stackOpts(o core.StackelbergOptions) core.StackelbergOptions {
	o.CertifyAfterSolve = c.CertifyAfterSolve
	return o
}

// pool returns the worker pool the harness fans out on.
func (c Config) pool() *parallel.Pool { return parallel.New(c.Parallel) }

// solverWorkers is the worker count runners hand to the solver layer
// (StackelbergOptions.Workers) for sweeps that already fan out at the
// sweep level: the outer fan-out saturates the pool, so the nested
// solves stay sequential to keep total concurrency bounded by the pool
// width instead of its square.
const solverWorkers = 1

// rounds scales a simulation-round budget.
func (c Config) rounds(full int) int {
	if c.Quick {
		if full >= 10 {
			return full / 10
		}
		return full
	}
	return full
}
