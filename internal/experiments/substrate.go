package experiments

// Substrate experiments: Fig. 2 (block collision PDF/CDF vs delay),
// Fig. 3 (Gaussian miner-count fit), Theorem 1's validity check, and the
// simulator-vs-Eq.6 winning-probability comparison.

import (
	"fmt"
	"math"
	"math/rand"

	"minegame/internal/chain"
	"minegame/internal/miner"
	"minegame/internal/numeric"
	"minegame/internal/population"
	"minegame/internal/sim"
)

// runFig2 regenerates Fig. 2: the block collision PDF and (near-linear)
// CDF as functions of the propagation delay, both analytically and from
// the proof-of-work race simulator. The empirical CDF uses an all-cloud
// allocation, for which a round forks exactly when a conflicting block
// arrives inside the propagation window.
func runFig2(cfg Config) (Result, error) {
	rng := sim.NewRNG(cfg.Seed, "fig2")
	rounds := cfg.rounds(20000)
	pdf := Table{
		ID:      "fig2a",
		Title:   "block collision PDF vs propagation delay (exponential, mean 600s)",
		Columns: []string{"delay_s", "pdf"},
	}
	for _, d := range numeric.Linspace(0, 1800, 37) {
		pdf.AddRow(d, chain.CollisionPDF(d, blockInterval))
	}
	cdfT := Table{
		ID:      "fig2b",
		Title:   "block collision CDF (split rate) vs propagation delay: analytic vs simulated",
		Columns: []string{"delay_s", "analytic_cdf", "simulated_cdf", "linear_approx"},
	}
	for _, d := range []float64{0, 15, 30, 60, 90, 120, 180, 240} {
		race := chain.RaceConfig{
			Interval:    blockInterval,
			CloudDelay:  d,
			Allocations: []chain.Allocation{{MinerID: 1, Cloud: 1}, {MinerID: 2, Cloud: 1}},
		}
		stats, err := chain.SimulateRounds(race, rounds, rng)
		if err != nil {
			return Result{}, fmt.Errorf("fig2 delay %g: %w", d, err)
		}
		cdfT.AddRow(d, chain.CollisionCDF(d, blockInterval), stats.ForkRate(), d/blockInterval)
	}
	cdfT.Notes = append(cdfT.Notes,
		"the split rate is almost linear in the delay for small delays, as in the paper's Bitcoin data")
	return Result{Tables: []Table{pdf, cdfT}}, nil
}

// runFig3 regenerates Fig. 3: the discretized Gaussian miner-count
// distribution (mu = 10, sigma^2 = 4) against an empirical histogram.
func runFig3(cfg Config) (Result, error) {
	model := population.Model{Mu: 10, Sigma: 2}
	pmf, err := model.PMF()
	if err != nil {
		return Result{}, err
	}
	rng := sim.NewRNG(cfg.Seed, "fig3")
	draws := cfg.rounds(50000)
	counts := make(map[int]int)
	for i := 0; i < draws; i++ {
		counts[pmf.Sample(rng)]++
	}
	t := Table{
		ID:      "fig3",
		Title:   "miner count fit to Gaussian (mu=10, sigma^2=4): PMF vs sampled frequency",
		Columns: []string{"k", "pmf", "sampled_freq"},
	}
	for k := pmf.Lo; k <= pmf.Hi(); k++ {
		if pmf.Prob(k) < 1e-6 && counts[k] == 0 {
			continue
		}
		t.AddRow(float64(k), pmf.Prob(k), float64(counts[k])/float64(draws))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("discrete mean %.3f, variance %.3f", pmf.Mean(), pmf.Variance()))
	return Result{Tables: []Table{t}}, nil
}

// runTheorem1 checks Theorem 1 (Σ W_i = 1) over random request profiles.
func runTheorem1(cfg Config) (Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7e01))
	trials := cfg.rounds(5000)
	worst := 0.0
	for i := 0; i < trials; i++ {
		n := 2 + rng.Intn(10)
		beta := rng.Float64() * 0.95
		prof := make(miner.Profile, n)
		for j := range prof {
			prof[j] = numeric.Point2{E: rng.Float64() * 20, C: rng.Float64() * 20}
		}
		if dev := math.Abs(numeric.Sum(miner.WinProbsFull(beta, prof)) - 1); dev > worst {
			worst = dev
		}
	}
	t := Table{
		ID:      "thm1",
		Title:   "Theorem 1 validity: max |ΣW_i − 1| over random profiles",
		Columns: []string{"trials", "max_abs_deviation"},
	}
	t.AddRow(float64(trials), worst)
	return Result{Tables: []Table{t}}, nil
}

// runSimWinProb compares the mining-race simulator's empirical winning
// probabilities with Eq. 6 evaluated at β = BetaEdge — the identity the
// chain substrate documents.
func runSimWinProb(cfg Config) (Result, error) {
	rng := sim.NewRNG(cfg.Seed, "simw")
	race := chain.RaceConfig{
		Interval:   blockInterval,
		CloudDelay: 134, // β_all ≈ 0.2
		Allocations: []chain.Allocation{
			{MinerID: 1, Edge: 5.6, Cloud: 26.4},
			{MinerID: 2, Edge: 2.0, Cloud: 40.0},
			{MinerID: 3, Edge: 10.0, Cloud: 5.0},
			{MinerID: 4, Edge: 0, Cloud: 20.0},
			{MinerID: 5, Edge: 4.0, Cloud: 15.0},
		},
	}
	rounds := cfg.rounds(60000)
	stats, err := chain.SimulateRounds(race, rounds, rng)
	if err != nil {
		return Result{}, err
	}
	var e, s float64
	for _, a := range race.Allocations {
		e += a.Edge
		s += a.Edge + a.Cloud
	}
	beta := chain.BetaEdge(e, s, race.CloudDelay, race.Interval)
	prof := make(miner.Profile, len(race.Allocations))
	for i, a := range race.Allocations {
		prof[i] = numeric.Point2{E: a.Edge, C: a.Cloud}
	}
	eq6 := miner.WinProbsFull(beta, prof)
	t := Table{
		ID:      "simw",
		Title:   "empirical winning probability (race simulator) vs Eq. 6 at beta = BetaEdge",
		Columns: []string{"miner", "empirical_W", "eq6_W"},
	}
	for i, a := range race.Allocations {
		t.AddRow(float64(a.MinerID), stats.WinProb(a.MinerID), eq6[i])
	}
	t.Notes = append(t.Notes, fmt.Sprintf("beta_edge = %.4f, rounds = %d", beta, rounds))
	return Result{Tables: []Table{t}}, nil
}
