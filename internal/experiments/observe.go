package experiments

import (
	"fmt"
	"time"

	"minegame/internal/obs"
)

// RunObserved executes the runner like Runner.Run, additionally
// recording per-figure telemetry to o (nil falls back to obs.Default()):
// a span named "experiments.<id>" whose duration lands in the
// "experiments.<id>.ms" histogram, and — so reports carry their own
// provenance — a note on the result's first table summarizing the wall
// time and the solver work (best-response sweeps, mining rounds, RL
// episodes) the artifact consumed. With a disabled observer it is
// byte-for-byte equivalent to r.Run(cfg).
func RunObserved(r Runner, cfg Config, o *obs.Observer) (Result, error) {
	if o == nil {
		o = obs.Default()
	}
	if !o.Enabled() {
		return r.Run(cfg)
	}
	before := o.Snapshot().Counters
	span := o.StartSpan("experiments."+r.ID, obs.Fields{"quick": cfg.Quick, "seed": cfg.Seed})
	start := time.Now() //lint:allow determinism wall-clock provenance note, reached only when the observer is explicitly enabled; disabled runs are byte-identical
	res, err := r.Run(cfg)
	elapsed := time.Since(start) //lint:allow determinism wall-clock provenance note, reached only when the observer is explicitly enabled; disabled runs are byte-identical
	span.End(obs.Fields{"tables": len(res.Tables), "failed": err != nil})
	if err != nil {
		return res, err
	}
	if len(res.Tables) > 0 {
		after := o.Snapshot().Counters
		note := fmt.Sprintf("observability: wall time %s", elapsed.Round(time.Millisecond))
		for _, c := range []struct{ counter, label string }{
			{"game.sweeps_total", "solver sweeps"},
			{"game.leader_rounds_total", "leader rounds"},
			{"chain.blocks_mined_total", "mining rounds"},
			{"rl.episodes_total", "RL episodes"},
		} {
			if d := after[c.counter] - before[c.counter]; d > 0 {
				note += fmt.Sprintf(", %s %d", c.label, d)
			}
		}
		res.Tables[0].Notes = append(res.Tables[0].Notes, note)
	}
	return res, nil
}
