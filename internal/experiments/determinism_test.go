package experiments

// Determinism across worker counts is the parallel layer's hard
// contract: every table — and therefore every text, Markdown, and CSV
// artifact assembled from one — must be byte-identical whether an
// experiment runs sequentially or fanned out over any number of
// workers. The goldens here pin that for a stochastic replicated
// experiment (fig9rep: RL runs under Replicate's seed fan-out) and a
// grid-shaped one (fig5: the sweep-point fan-out).

import (
	"runtime"
	"strings"
	"testing"
)

// renderAll renders an experiment's tables as aligned text plus CSV —
// the two byte formats the CLIs and -out emit from tables.
func renderAll(t *testing.T, id string, cfg Config) string {
	t.Helper()
	r, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(cfg)
	if err != nil {
		t.Fatalf("%s (parallel=%d): %v", id, cfg.Parallel, err)
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	for i := range res.Tables {
		if err := res.Tables[i].WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

func TestExperimentsByteIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment runs")
	}
	for _, id := range []string{"fig9rep", "fig5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			base := Config{Seed: 1, Quick: true, Parallel: 1}
			want := renderAll(t, id, base)
			for _, workers := range []int{2, runtime.GOMAXPROCS(0) + 2} {
				cfg := base
				cfg.Parallel = workers
				if got := renderAll(t, id, cfg); got != want {
					t.Errorf("parallel=%d: output differs from sequential run", workers)
				}
			}
		})
	}
}
