package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// plotSymbols mark successive series in an ASCII plot.
var plotSymbols = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// AsciiPlot renders the table's yCols against xCol as a width×height
// ASCII chart with axis ranges and a legend — enough to see the paper's
// curve shapes straight from a terminal. Rows with non-finite values are
// skipped.
func AsciiPlot(w io.Writer, tab Table, xCol string, yCols []string, width, height int) error {
	if width < 16 || height < 4 {
		return fmt.Errorf("experiments: plot area %dx%d too small", width, height)
	}
	xs, err := tab.Column(xCol)
	if err != nil {
		return err
	}
	series := make([][]float64, len(yCols))
	for i, name := range yCols {
		ys, err := tab.Column(name)
		if err != nil {
			return err
		}
		series[i] = ys
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	finite := 0
	for r, x := range xs {
		if !isFinite(x) {
			continue
		}
		for _, ys := range series {
			if !isFinite(ys[r]) {
				continue
			}
			finite++
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, ys[r]), math.Max(ymax, ys[r])
		}
	}
	if finite == 0 {
		return fmt.Errorf("experiments: no finite points to plot in table %s", tab.ID)
	}
	if xmax == xmin { //lint:allow floateq degenerate-range guard: only an exactly zero span divides by zero in the scale below
		xmax = xmin + 1
	}
	if ymax == ymin { //lint:allow floateq degenerate-range guard: only an exactly zero span divides by zero in the scale below
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, ys := range series {
		sym := plotSymbols[si%len(plotSymbols)]
		for r, x := range xs {
			if !isFinite(x) || !isFinite(ys[r]) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
			row := height - 1 - int(math.Round((ys[r]-ymin)/(ymax-ymin)*float64(height-1)))
			grid[row][col] = sym
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", tab.ID, tab.Title)
	for i, line := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3g", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.3g", ymin)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(line))
	}
	fmt.Fprintf(&b, "%8s  %-*s%s\n", "", width-7, fmt.Sprintf("%.3g", xmin), fmt.Sprintf("%.3g", xmax))
	fmt.Fprintf(&b, "%8s  x: %s", "", xCol)
	for si, name := range yCols {
		fmt.Fprintf(&b, "   %c: %s", plotSymbols[si%len(plotSymbols)], name)
	}
	b.WriteByte('\n')
	_, err = io.WriteString(w, b.String())
	return err
}

// PlotTable renders every numeric column of the table against its first
// column with default dimensions.
func PlotTable(w io.Writer, tab Table) error {
	if len(tab.Columns) < 2 || len(tab.Rows) < 2 {
		return nil // nothing worth plotting
	}
	return AsciiPlot(w, tab, tab.Columns[0], tab.Columns[1:], 64, 16)
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
