package experiments

// Mean-field class compression at experiment scale: the "meanfield"
// runner demonstrates the classed equilibrium layer end to end —
// classed-vs-exact agreement at feasible N, the O(K) scaling of the
// miner subgame to a million-miner market, a full classed Stackelberg
// solve whose leader grids price the million-miner follower market, and
// the streaming dynamic-N population that mutates class counts between
// pricing periods. See DESIGN.md §12 and results/meanfield_speedup.md.

import (
	"fmt"
	"math"

	"minegame/internal/core"
	"minegame/internal/game"
	"minegame/internal/population"
	"minegame/internal/sim"
)

// meanfieldConfig builds the heterogeneous connected market used across
// the runner: n miners over seven budget levels 150..240.
func meanfieldConfig(n int) core.Config {
	cfg := baseConfig()
	cfg.N = n
	budgets := make([]float64, n)
	for i := range budgets {
		budgets[i] = 150 + 15*float64(i%7)
	}
	cfg.Budgets = budgets
	return cfg
}

// runMeanField regenerates the large-N scaling evidence: exactness of
// the compression where the exact solver is feasible, and classed
// solves far beyond it.
func runMeanField(exp Config) (Result, error) {
	p := core.Prices{Edge: defaultPriceE, Cloud: defaultPriceC}

	// Table 1 — classed vs exact at feasible N: the compressed solve
	// must land on the same equilibrium the per-miner solver finds.
	agree := Table{
		ID:    "meanfield_exact",
		Title: "classed vs exact miner equilibrium (connected, 7 budget classes)",
		Columns: []string{
			"N", "K", "compress_ratio", "classed_sweeps",
			"E_classed", "E_exact", "demand_rel_err", "eps_rel",
		},
	}
	exactNs := []int{10, 100, 1000}
	if exp.Quick {
		exactNs = []int{10, 100}
	}
	for _, n := range exactNs {
		cfg := meanfieldConfig(n)
		cp, err := cfg.Classes(0)
		if err != nil {
			return Result{}, fmt.Errorf("meanfield N=%d: %w", n, err)
		}
		eq, err := core.SolveMinerEquilibriumClassed(cfg, cp, p, game.NEOptions{Tol: 1e-9})
		if err != nil {
			return Result{}, fmt.Errorf("meanfield classed N=%d: %w", n, err)
		}
		if err := exp.certifyClassed(cfg, cp, p, eq); err != nil {
			return Result{}, fmt.Errorf("meanfield classed N=%d: %w", n, err)
		}
		exact, err := core.SolveMinerEquilibrium(cfg, p, game.NEOptions{Tol: 1e-9})
		if err != nil {
			return Result{}, fmt.Errorf("meanfield exact N=%d: %w", n, err)
		}
		gains := core.DeviationsClassed(cfg, p, cp, eq.Requests)
		eps := 0.0
		for _, g := range gains {
			eps = math.Max(eps, g)
		}
		agree.AddRow(float64(n), float64(cp.K()), cp.CompressRatio(), float64(eq.Iterations),
			eq.EdgeDemand, exact.EdgeDemand,
			math.Abs(eq.EdgeDemand-exact.EdgeDemand)/(1+exact.EdgeDemand),
			eps/cfg.Reward)
	}
	agree.Notes = append(agree.Notes,
		"the compressed solve reproduces the exact per-miner equilibrium; eps_rel is the worst per-class best-response gain (exact for all members)")

	// Table 2 — O(K) scaling: the classed subgame at N far beyond the
	// exact solver's reach. Sweeps stay flat in N because the market only
	// has K distinct behaviours.
	bigNs := []int{1_000, 100_000, 1_000_000}
	if exp.Miners > 0 {
		bigNs[len(bigNs)-1] = exp.Miners
	}
	if exp.Quick {
		bigNs = []int{1_000, 10_000}
	}
	scale := Table{
		ID:    "meanfield_scale",
		Title: "classed subgame scaling (connected, 7 budget classes)",
		Columns: []string{
			"N", "K", "compress_ratio", "sweeps", "converged",
			"E", "C", "per_miner_e", "eps_rel",
		},
	}
	for _, n := range bigNs {
		cfg := meanfieldConfig(n)
		cp, err := cfg.Classes(exp.Classes)
		if err != nil {
			return Result{}, fmt.Errorf("meanfield N=%d: %w", n, err)
		}
		eq, err := core.SolveMinerEquilibriumClassed(cfg, cp, p, game.NEOptions{})
		if err != nil {
			return Result{}, fmt.Errorf("meanfield scale N=%d: %w", n, err)
		}
		if err := exp.certifyClassed(cfg, cp, p, eq); err != nil {
			return Result{}, fmt.Errorf("meanfield scale N=%d: %w", n, err)
		}
		gains := core.DeviationsClassed(cfg, p, cp, eq.Requests)
		eps := 0.0
		for _, g := range gains {
			eps = math.Max(eps, g)
		}
		conv := 0.0
		if eq.Converged {
			conv = 1
		}
		scale.AddRow(float64(n), float64(cp.K()), cp.CompressRatio(), float64(eq.Iterations), conv,
			eq.EdgeDemand, eq.CloudDemand, eq.EdgeDemand/float64(n), eps/cfg.Reward)
	}
	scale.Notes = append(scale.Notes,
		"per-sweep cost is O(K): the million-miner solve does the same work as the thousand-miner one")

	// Table 3 — the full two-stage game over the compressed market: the
	// leader price grids anticipate a large-N follower market per probe.
	stackN := 1_000_000
	if exp.Miners > 0 {
		stackN = exp.Miners
	}
	if exp.Quick {
		stackN = 10_000
	}
	cfg := meanfieldConfig(stackN)
	cp, err := cfg.Classes(exp.Classes)
	if err != nil {
		return Result{}, fmt.Errorf("meanfield stackelberg: %w", err)
	}
	sres, err := core.SolveStackelbergClassed(cfg, cp, exp.stackClassedOpts(core.StackelbergOptions{
		Leader:  game.LeaderOptions{GridN: 24},
		Workers: solverWorkers,
	}))
	if err != nil {
		return Result{}, fmt.Errorf("meanfield stackelberg: %w", err)
	}
	stack := Table{
		ID:    "meanfield_stackelberg",
		Title: fmt.Sprintf("classed Stackelberg equilibrium (N=%d, K=%d)", stackN, cp.K()),
		Columns: []string{
			"N", "K", "P_e", "P_c", "profit_e", "profit_c", "E", "C", "converged",
		},
	}
	conv := 0.0
	if sres.Converged {
		conv = 1
	}
	stack.AddRow(float64(stackN), float64(cp.K()),
		sres.Prices.Edge, sres.Prices.Cloud, sres.ProfitE, sres.ProfitC,
		sres.Follower.EdgeDemand, sres.Follower.CloudDemand, conv)
	stack.Notes = append(stack.Notes,
		"every leader-stage price probe solves the compressed follower market; the full profile is never materialized")

	// Table 4 — streaming dynamic N: arrivals/departures mutate class
	// counts between pricing periods and each period re-solves warm
	// started, generalizing the §V Gaussian-N snapshot.
	classes := cp.Classes
	if exp.Quick || stackN > 100_000 {
		// Keep the stream at 10⁴ miners so churn is visible per period.
		streamCfg := meanfieldConfig(10_000)
		scp, err := streamCfg.Classes(exp.Classes)
		if err != nil {
			return Result{}, fmt.Errorf("meanfield stream: %w", err)
		}
		classes = scp.Classes
	}
	stream, err := population.NewStream(classes, population.StreamConfig{
		ArrivalRate: float64(len(classes)) * 10,
		DepartProb:  0.01,
	}, sim.NewRNG(exp.Seed, "experiments.meanfield"))
	if err != nil {
		return Result{}, fmt.Errorf("meanfield stream: %w", err)
	}
	params := cfg.Params(p)
	points, err := stream.SolvePeriods(params, exp.rounds(12), game.NEOptions{})
	if err != nil {
		return Result{}, fmt.Errorf("meanfield stream: %w", err)
	}
	dyn := Table{
		ID:    "meanfield_stream",
		Title: "streaming population: classed re-solve per pricing period",
		Columns: []string{
			"period", "N", "arrived", "departed", "active_classes", "E", "C", "sweeps",
		},
	}
	for _, pt := range points {
		if !pt.Converged {
			return Result{}, fmt.Errorf("meanfield stream: period %d did not converge", pt.Period)
		}
		dyn.AddRow(float64(pt.Period), float64(pt.N), float64(pt.Arrived), float64(pt.Departed),
			float64(pt.ActiveClasses), pt.EdgeDemand, pt.CloudDemand, float64(pt.Iterations))
	}
	dyn.Notes = append(dyn.Notes,
		"per-period cost is O(K) regardless of N: churn mutates class counts, never a full profile",
		fmt.Sprintf("stationary population λ/q = %.0f", float64(len(classes))*10/0.01))

	return Result{Tables: []Table{agree, scale, stack, dyn}}, nil
}
