package experiments

import "testing"

func TestAllIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, r := range All() {
		if r.ID == "" {
			t.Errorf("runner %q has an empty ID", r.Title)
		}
		if seen[r.ID] {
			t.Errorf("duplicate experiment ID %q", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil {
			t.Errorf("experiment %q has no Run function", r.ID)
		}
	}
}

func TestByIDFindsEveryRunner(t *testing.T) {
	for _, want := range All() {
		got, err := ByID(want.ID)
		if err != nil {
			t.Fatalf("ByID(%q): %v", want.ID, err)
		}
		if got.ID != want.ID || got.Title != want.Title {
			t.Errorf("ByID(%q) = %q (%q)", want.ID, got.ID, got.Title)
		}
	}
	if _, err := ByID("no-such-experiment"); err == nil {
		t.Error("want error for an unknown ID")
	}
}
