package experiments

// Leader-stage experiments: Fig. 8 (equilibrium prices vs the ESP's
// operating cost in both modes) and Table II (closed forms, sufficient
// budgets, connected vs standalone).

import (
	"fmt"

	"minegame/internal/core"
	"minegame/internal/miner"
	"minegame/internal/numeric"
	"minegame/internal/parallel"
)

// runFig8 regenerates Fig. 8: Stackelberg equilibrium prices and profits
// while the ESP's unit operating cost sweeps, in both operation modes.
// The cost points fan out over exp.Parallel workers; each point's two
// mode solves stay sequential (see solverWorkers).
func runFig8(exp Config) (Result, error) {
	t := Table{
		ID:    "fig8",
		Title: "SP equilibrium prices/profits vs ESP cost C_e (both modes, sufficient budget)",
		Columns: []string{
			"C_e",
			"pe_connected", "pc_connected", "esp_profit_connected", "csp_profit_connected",
			"pe_standalone", "pc_standalone", "esp_profit_standalone", "csp_profit_standalone",
		},
	}
	rows, err := parallel.Map(exp.pool(), numeric.Linspace(1, 6, 6), func(_ int, ce float64) ([]float64, error) {
		cfg := baseConfig()
		cfg.CostE = ce
		cfg.EdgeCapacity = 25
		cfg.Budgets = []float64{1000}
		cmp, err := core.CompareModes(cfg, exp.stackOpts(core.StackelbergOptions{Workers: solverWorkers}))
		if err != nil {
			return nil, fmt.Errorf("fig8 C_e=%g: %w", ce, err)
		}
		return []float64{ce,
			cmp.Connected.Prices.Edge, cmp.Connected.Prices.Cloud,
			cmp.Connected.ProfitE, cmp.Connected.ProfitC,
			cmp.Standalone.Prices.Edge, cmp.Standalone.Prices.Cloud,
			cmp.Standalone.ProfitE, cmp.Standalone.ProfitC,
		}, nil
	})
	if err != nil {
		return Result{}, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"the connected ESP's price rises with its cost and stays above the CSP's",
		"the standalone market-clearing price P_c* + βR(n−1)/(n·E_max) does not depend on C_e, so the paper's 'standalone charges more' holds near the default costs and reverses for expensive ESPs",
		"the standalone ESP's PROFIT advantage (capacity rent) is robust across the whole cost sweep")
	return Result{Tables: []Table{t}}, nil
}

// runTable2 regenerates Table II: sufficient-budget closed forms per
// mode, cross-checked against the numeric equilibrium solvers.
func runTable2(exp Config) (Result, error) {
	prices := defaultPrices()
	cfg := baseConfig()
	cfg.Budgets = []float64{1e6}
	// Slack capacity: Table II's comparison concerns the unconstrained
	// sufficient-budget forms (the binding case is reported separately).
	cfg.EdgeCapacity = 60

	params := cfg.Params(prices)
	conn, err := miner.HomogeneousConnected(params, cfg.N, cfg.Budget(0))
	if err != nil {
		return Result{}, fmt.Errorf("table2 connected closed form: %w", err)
	}
	alone, err := miner.HomogeneousStandalone(params, cfg.N, cfg.EdgeCapacity)
	if err != nil {
		return Result{}, fmt.Errorf("table2 standalone closed form: %w", err)
	}

	// Cold starts keep the numeric columns an INDEPENDENT check of the
	// closed forms: the default solve would otherwise seed the iteration
	// from the very formulas this table is cross-checking.
	numConn := cfg
	eqConn, err := core.SolveMinerEquilibriumFrom(numConn, prices, core.StackelbergOptions{}.Follower, numConn.ColdStart(prices))
	if err != nil {
		return Result{}, fmt.Errorf("table2 connected numeric: %w", err)
	}
	if err := exp.certify(numConn, prices, eqConn); err != nil {
		return Result{}, fmt.Errorf("table2 connected numeric: %w", err)
	}
	numAlone := cfg
	numAlone.Mode = standaloneConfig().Mode
	eqAlone, err := core.SolveMinerEquilibriumFrom(numAlone, prices, core.StackelbergOptions{}.Follower, numAlone.ColdStart(prices))
	if err != nil {
		return Result{}, fmt.Errorf("table2 standalone numeric: %w", err)
	}
	if err := exp.certify(numAlone, prices, eqAlone); err != nil {
		return Result{}, fmt.Errorf("table2 standalone numeric: %w", err)
	}

	n := float64(cfg.N)
	t := Table{
		ID:      "tab2",
		Title:   "Table II: sufficient-budget equilibria, connected vs standalone (closed form and numeric)",
		Columns: []string{"quantity", "connected_closed", "connected_numeric", "standalone_closed", "standalone_numeric"},
		Notes: []string{
			"quantity codes: 1 = per-miner e*, 2 = per-miner c*, 3 = total edge E, 4 = total demand S, 5 = capacity shadow price",
			"total demand S is identical across modes; the standalone mode shifts purchases toward the ESP",
		},
	}
	t.AddRow(1, conn.Request.E, eqConn.Requests[0].E, alone.Request.E, eqAlone.Requests[0].E)
	t.AddRow(2, conn.Request.C, eqConn.Requests[0].C, alone.Request.C, eqAlone.Requests[0].C)
	t.AddRow(3, n*conn.Request.E, eqConn.EdgeDemand, n*alone.Request.E, eqAlone.EdgeDemand)
	t.AddRow(4, n*(conn.Request.E+conn.Request.C), eqConn.TotalDemand,
		n*(alone.Request.E+alone.Request.C), eqAlone.TotalDemand)

	// The binding-capacity variant: a standalone ESP with E_max = 25
	// sells out, and the shared constraint carries a positive shadow
	// price common to all miners.
	capCfg := cfg
	capCfg.Mode = numAlone.Mode
	capCfg.EdgeCapacity = 25
	capClosed, err := miner.HomogeneousStandalone(params, capCfg.N, capCfg.EdgeCapacity)
	if err != nil {
		return Result{}, fmt.Errorf("table2 binding closed form: %w", err)
	}
	capEq, err := core.SolveMinerEquilibriumFrom(capCfg, prices, core.StackelbergOptions{}.Follower, capCfg.ColdStart(prices))
	if err != nil {
		return Result{}, fmt.Errorf("table2 binding numeric: %w", err)
	}
	if err := exp.certify(capCfg, prices, capEq); err != nil {
		return Result{}, fmt.Errorf("table2 binding numeric: %w", err)
	}
	capTab := Table{
		ID:      "tab2cap",
		Title:   "Table II (binding capacity E_max=25): closed form vs numeric variational GNE",
		Columns: []string{"quantity", "closed_form", "numeric"},
		Notes: []string{
			"quantity codes: 1 = total edge demand E (= E_max), 2 = capacity shadow price μ, 3 = total demand S",
		},
	}
	capTab.AddRow(1, n*capClosed.Request.E, capEq.EdgeDemand)
	capTab.AddRow(2, capClosed.Multiplier, capEq.Multiplier)
	capTab.AddRow(3, n*(capClosed.Request.E+capClosed.Request.C), capEq.TotalDemand)

	// The SP-stage closed forms of the standalone mode.
	sp := Table{
		ID:      "tab2sp",
		Title:   "Table II (SP stage): standalone market-clearing prices",
		Columns: []string{"quantity", "closed_form"},
		Notes: []string{
			"quantity codes: 1 = P_c* = sqrt((1−β)R(n−1)C_c/(n·E_max)), 2 = P_e* = P_c* + βR(n−1)/(n·E_max)",
		},
	}
	pcStar := miner.OptimalPriceCloudStandalone(cfg.Reward, cfg.Beta, cfg.CostC, cfg.N, capCfg.EdgeCapacity)
	peStar := miner.ClearingPriceEdge(cfg.Reward, cfg.Beta, pcStar, cfg.N, capCfg.EdgeCapacity)
	sp.AddRow(1, pcStar)
	sp.AddRow(2, peStar)
	return Result{Tables: []Table{t, capTab, sp}}, nil
}
