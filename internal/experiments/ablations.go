package experiments

// Ablations of the reproduction's design choices (DESIGN.md §2):
//
//	ablbeta — exogenous fork rate vs the physically self-consistent
//	          β* = BetaEdge(E*, S*, D, τ) fixed point.
//	ablh    — exogenous transfer probability vs the Erlang-B congestion
//	          equilibrium h* = 1 − B(capacity, E*).
//	abldisc — miner-count discretization convention: rounding (mean-true)
//	          vs the paper's printed ceiling (mean-shifted by +½).
//	ablgne  — standalone solution concept: variational equilibrium vs the
//	          Algorithm-2-style generalized Nash equilibrium.
//	abllead — leader-stage concept: Theorem 4's sequential commitment vs
//	          literal simultaneous best-response iteration (which cycles).
//	ablrl   — learner ablation: constant-step ε-greedy vs sample-average
//	          vs gradient bandit, measured as distance to the analytic NE.
//	ablenv  — learning environment: model payoffs vs realized payoffs
//	          from simulated 50-block mining races.

import (
	"fmt"
	"math"

	"minegame/internal/chain"
	"minegame/internal/core"
	"minegame/internal/game"
	"minegame/internal/parallel"
	"minegame/internal/population"
	"minegame/internal/rl"
	"minegame/internal/sim"
)

// runAblBeta compares the equilibrium under the paper's constant β with
// the self-consistent fork-rate fixed point across propagation delays.
func runAblBeta(exp Config) (Result, error) {
	t := Table{
		ID:      "ablbeta",
		Title:   "exogenous vs self-consistent fork rate across CSP delays",
		Columns: []string{"delay_s", "beta_exogenous", "beta_star", "E_exogenous", "E_star", "C_exogenous", "C_star"},
	}
	// Delays kept in the mixed-strategy regime; at extreme delays the
	// cloud is priced out entirely, E/S → 1, and the two rates coincide
	// trivially. Each delay is an independent fixed-point solve, so the
	// points fan out over exp.Parallel workers.
	rows, err := parallel.Map(exp.pool(), []float64{60, 134, 240, 420}, func(_ int, d float64) ([]float64, error) {
		cfg := baseConfig()
		cfg.Beta = chain.CollisionCDF(d, blockInterval)
		exo, err := core.SolveMinerEquilibrium(cfg, defaultPrices(), game.NEOptions{})
		if err != nil {
			return nil, fmt.Errorf("ablbeta exogenous delay=%g: %w", d, err)
		}
		sc, err := core.SolveSelfConsistentBeta(cfg, defaultPrices(), d, blockInterval, game.NEOptions{})
		if err != nil {
			return nil, fmt.Errorf("ablbeta self-consistent delay=%g: %w", d, err)
		}
		return []float64{d, cfg.Beta, sc.Beta,
			exo.EdgeDemand, sc.Equilibrium.EdgeDemand,
			exo.CloudDemand, sc.Equilibrium.CloudDemand}, nil
	})
	if err != nil {
		return Result{}, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"β* < β_exogenous always: only edge-solved rivals can beat an in-flight cloud block",
		"at fixed prices the feedback UNRAVELS the edge premium: less edge power → fewer edge conflicts → smaller β → even less edge demand, collapsing to the all-cloud fixed point β* = 0",
		"the slope of the best-response map at β=0 is h·P_c/(P_e−P_c)·D/τ < 1 for these defaults, so β* = 0 is the unique fixed point — the paper's positive edge demand exists only because β is held exogenous")
	return Result{Tables: []Table{t}}, nil
}

// runAblH compares the fixed transfer probability with the Erlang-B
// congestion equilibrium across physical ESP capacities.
func runAblH(Config) (Result, error) {
	t := Table{
		ID:      "ablh",
		Title:   "exogenous h=0.7 vs endogenous Erlang-B congestion equilibrium",
		Columns: []string{"esp_capacity", "h_star", "E_star", "E_at_h0.7"},
	}
	cfg := baseConfig()
	exo, err := core.SolveMinerEquilibrium(cfg, defaultPrices(), game.NEOptions{})
	if err != nil {
		return Result{}, err
	}
	for _, capacity := range []float64{10, 20, 30, 45, 60, 100} {
		res, err := core.SolveEndogenousTransfer(cfg, defaultPrices(), capacity, game.NEOptions{})
		if err != nil {
			return Result{}, fmt.Errorf("ablh capacity=%g: %w", capacity, err)
		}
		t.AddRow(capacity, res.SatisfyProb, res.EdgeDemand, exo.EdgeDemand)
	}
	t.Notes = append(t.Notes,
		"h* rises with capacity toward 1; the fixed h=0.7 corresponds to one particular provisioning level")
	return Result{Tables: []Table{t}}, nil
}

// runAblDisc shows how the miner-count discretization convention changes
// the §V headline: the ceiling form silently adds half a rival on
// average, masking part of the uncertainty effect.
func runAblDisc(Config) (Result, error) {
	t := Table{
		ID:      "abldisc",
		Title:   "miner-count discretization: rounding vs the paper's ceiling (mu=10)",
		Columns: []string{"sigma", "mean_round", "mean_ceil", "e_star_round", "e_star_ceil", "e_star_fixed"},
	}
	p := fig9Params(defaultPriceE)
	fixed, err := population.SymmetricEquilibrium(p, population.Degenerate(10), defaultBudget, population.SolveOptions{})
	if err != nil {
		return Result{}, err
	}
	for _, sigma := range []float64{1, 2, 3} {
		m := population.Model{Mu: 10, Sigma: sigma}
		round, err := m.PMF()
		if err != nil {
			return Result{}, err
		}
		ceil, err := m.PMFCeil()
		if err != nil {
			return Result{}, err
		}
		eqRound, err := population.SymmetricEquilibrium(p, round, defaultBudget, population.SolveOptions{})
		if err != nil {
			return Result{}, fmt.Errorf("abldisc round σ=%g: %w", sigma, err)
		}
		eqCeil, err := population.SymmetricEquilibrium(p, ceil, defaultBudget, population.SolveOptions{})
		if err != nil {
			return Result{}, fmt.Errorf("abldisc ceil σ=%g: %w", sigma, err)
		}
		t.AddRow(sigma, round.Mean(), ceil.Mean(), eqRound.Request.E, eqCeil.Request.E, fixed.Request.E)
	}
	t.Notes = append(t.Notes,
		"the ceiling convention inflates the mean rival count by ≈0.5, biasing e* downward against the fixed-N baseline")
	return Result{Tables: []Table{t}}, nil
}

// runAblGNE compares the standalone solution concepts: the variational
// equilibrium (one common scarcity price) against the Algorithm-2-style
// GNE reached by capacity self-limitation.
func runAblGNE(Config) (Result, error) {
	t := Table{
		ID:      "ablgne",
		Title:   "standalone GNEP: variational equilibrium vs Algorithm-2-style GNE",
		Columns: []string{"E_max", "E_variational", "E_gne", "multiplier", "umin_var", "umax_var", "umin_gne", "umax_gne"},
	}
	for _, emax := range []float64{15, 20, 30, 40} {
		cfg := standaloneConfig()
		cfg.EdgeCapacity = emax
		ve, err := core.SolveMinerEquilibrium(cfg, defaultPrices(), game.NEOptions{})
		if err != nil {
			return Result{}, fmt.Errorf("ablgne variational E_max=%g: %w", emax, err)
		}
		gne, err := core.SolveMinerGNE(cfg, defaultPrices(), game.NEOptions{})
		if err != nil {
			return Result{}, fmt.Errorf("ablgne GNE E_max=%g: %w", emax, err)
		}
		uminV, umaxV := minMax(ve.Utilities)
		uminG, umaxG := minMax(gne.Utilities)
		t.AddRow(emax, ve.EdgeDemand, gne.EdgeDemand, ve.Multiplier, uminV, umaxV, uminG, umaxG)
	}
	t.Notes = append(t.Notes,
		"both concepts sell out scarce capacity; the variational solution treats homogeneous miners symmetrically (umin = umax)")
	return Result{Tables: []Table{t}}, nil
}

func minMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// runAblLeaders contrasts the default sequential leader stage (Theorem 4
// commitment) with literal simultaneous best-response iteration at
// several dampings: the simultaneous dynamics fail to settle.
func runAblLeaders(Config) (Result, error) {
	cfg := baseConfig()
	seq, err := core.SolveStackelberg(cfg, core.StackelbergOptions{})
	if err != nil {
		return Result{}, fmt.Errorf("abllead sequential: %w", err)
	}
	t := Table{
		ID:      "abllead",
		Title:   "leader stage: sequential commitment vs simultaneous best-response iteration",
		Columns: []string{"damping", "pe_simultaneous", "pc_simultaneous", "converged", "pe_sequential", "pc_sequential"},
	}
	for _, damping := range []float64{1, 0.5, 0.25} {
		simultaneous, err := core.SolveStackelberg(cfg, core.StackelbergOptions{
			Simultaneous: true,
			Leader:       game.LeaderOptions{Damping: damping, MaxIter: 40},
		})
		conv := 0.0
		pe, pc := math.NaN(), math.NaN()
		if err == nil {
			pe, pc = simultaneous.Prices.Edge, simultaneous.Prices.Cloud
			if simultaneous.Converged {
				conv = 1
			}
		}
		t.AddRow(damping, pe, pc, conv, seq.Prices.Edge, seq.Prices.Cloud)
	}
	t.Notes = append(t.Notes,
		"the simultaneous iteration cycles for most dampings (converged=0): the ESP's profit is monotone along the CSP's reaction curve",
		"the sequential commitment (default) is the concept Theorem 4 actually analyzes")
	return Result{Tables: []Table{t}}, nil
}

// runAblRL compares the three learners on the same self-play task,
// measured as the distance of the learned mean strategy from the
// analytic equilibrium (5.6, 26.4).
func runAblRL(cfg Config) (Result, error) {
	t := Table{
		ID:      "ablrl",
		Title:   "learner ablation on the connected subgame (analytic NE e*=5.6, c*=26.4)",
		Columns: []string{"learner", "learned_e", "learned_c", "abs_err_e", "abs_err_c"},
		Notes: []string{
			"learner codes: 1 = constant-step ε-greedy, 2 = sample-average ε-greedy, 3 = gradient bandit, 4 = UCB1, 5 = Exp3",
			"UCB1's deterministic optimism is known to struggle in self-play: every miner explores the same arms in lockstep, so the non-stationarity never averages out the way it does for randomized learners",
		},
	}
	grid, err := rl.NewActionGrid(defaultPriceE, defaultPriceC, defaultBudget, 11, 11)
	if err != nil {
		return Result{}, err
	}
	net := baseConfig().Network(defaultPrices(), blockInterval)
	env := rl.ModelEnv{Net: net, Reward: defaultReward}
	episodes := cfg.rounds(50000)
	build := func(kind int) (rl.Learner, error) {
		switch kind {
		case 1:
			return rl.NewEpsilonGreedy(len(grid.Actions), rl.EpsilonGreedyConfig{})
		case 2:
			return rl.NewEpsilonGreedy(len(grid.Actions), rl.EpsilonGreedyConfig{SampleAverage: true, MinEpsilon: 0.02})
		case 3:
			return rl.NewGradientBandit(len(grid.Actions), 0.002)
		case 4:
			return rl.NewUCB1(len(grid.Actions), 2, defaultReward/10)
		default:
			return rl.NewExp3(len(grid.Actions), 0.07, defaultReward/2)
		}
	}
	for kind := 1; kind <= 5; kind++ {
		pool := make([]rl.Learner, defaultN)
		for i := range pool {
			l, err := build(kind)
			if err != nil {
				return Result{}, err
			}
			pool[i] = l
		}
		tr, err := rl.NewTrainer(grid, env, population.Degenerate(defaultN), pool,
			sim.NewRNG(cfg.Seed, fmt.Sprintf("ablrl-%d", kind)))
		if err != nil {
			return Result{}, err
		}
		if err := tr.Train(episodes); err != nil {
			return Result{}, fmt.Errorf("ablrl learner %d: %w", kind, err)
		}
		mean := tr.MeanGreedy()
		t.AddRow(float64(kind), mean.E, mean.C, math.Abs(mean.E-5.6), math.Abs(mean.C-26.4))
	}
	return Result{Tables: []Table{t}}, nil
}

// runAblEnv trains identical sample-average pools on the model-payoff
// environment and on the physical chain-simulation environment, and
// reports where each lands relative to the analytic equilibrium.
func runAblEnv(cfg Config) (Result, error) {
	t := Table{
		ID:      "ablenv",
		Title:   "learning environment: model payoffs vs simulated 50-block mining races",
		Columns: []string{"environment", "learned_e", "learned_c"},
		Notes: []string{
			"environment codes: 1 = ModelEnv (paper's expected utilities), 2 = ChainEnv (realized races)",
			"analytic connected NE is (5.6, 26.4); the physical environment deviates where the model's conditional-degradation approximation does",
		},
	}
	grid, err := rl.NewActionGrid(defaultPriceE, defaultPriceC, defaultBudget, 11, 11)
	if err != nil {
		return Result{}, err
	}
	net := baseConfig().Network(defaultPrices(), blockInterval)
	envs := []rl.Environment{
		rl.ModelEnv{Net: net, Reward: defaultReward},
		rl.ChainEnv{Net: net, Reward: defaultReward, Blocks: 50},
	}
	episodes := cfg.rounds(40000)
	for i, env := range envs {
		pool := make([]rl.Learner, defaultN)
		for j := range pool {
			l, err := rl.NewEpsilonGreedy(len(grid.Actions), rl.EpsilonGreedyConfig{SampleAverage: true, MinEpsilon: 0.02})
			if err != nil {
				return Result{}, err
			}
			pool[j] = l
		}
		tr, err := rl.NewTrainer(grid, env, population.Degenerate(defaultN), pool,
			sim.NewRNG(cfg.Seed, fmt.Sprintf("ablenv-%d", i)))
		if err != nil {
			return Result{}, err
		}
		if err := tr.Train(episodes); err != nil {
			return Result{}, fmt.Errorf("ablenv env %d: %w", i+1, err)
		}
		mean := tr.MeanGreedy()
		t.AddRow(float64(i+1), mean.E, mean.C)
	}
	return Result{Tables: []Table{t}}, nil
}
