package experiments

// Topology experiment: the mechanism behind the paper's Fig. 2 delays.
// Blocks gossip over a peer-to-peer overlay; the overlay's density sets
// the propagation delay, the delay sets the fork rate, and the fork rate
// is the β the whole game runs on.

import (
	"fmt"

	"minegame/internal/chain"
	"minegame/internal/core"
	"minegame/internal/game"
	"minegame/internal/sim"
)

func runGossip(cfg Config) (Result, error) {
	rng := sim.NewRNG(cfg.Seed, "gossip")
	t := Table{
		ID:    "gossip",
		Title: "peer-to-peer topology → propagation delay → fork rate → edge demand",
		Columns: []string{
			"chords_per_node", "d50_s", "d90_s", "beta90", "edge_demand",
		},
	}
	const (
		nodes      = 200
		hopLatency = 18.0 // seconds per gossip hop (mobile wide-area links)
		samples    = 40
	)
	for _, degree := range []int{0, 1, 2, 4, 8} {
		net, err := chain.NewGossipNetwork(chain.GossipConfig{
			Nodes:       nodes,
			Degree:      degree,
			MeanLatency: hopLatency,
		}, rng)
		if err != nil {
			return Result{}, fmt.Errorf("gossip degree %d: %w", degree, err)
		}
		d50, err := net.PropagationDelay(0.5, cfg.rounds(samples), rng)
		if err != nil {
			return Result{}, err
		}
		d90, err := net.PropagationDelay(0.9, cfg.rounds(samples), rng)
		if err != nil {
			return Result{}, err
		}
		beta := chain.CollisionCDF(d90, blockInterval)
		if beta >= 0.95 {
			beta = 0.95 // keep the game solvable at pathological delays
		}
		gameCfg := baseConfig()
		gameCfg.Beta = beta
		eq, err := core.SolveMinerEquilibrium(gameCfg, defaultPrices(), game.NEOptions{})
		if err != nil {
			return Result{}, fmt.Errorf("gossip equilibrium at degree %d (β=%g): %w", degree, beta, err)
		}
		t.AddRow(float64(degree), d50, d90, beta, eq.EdgeDemand)
	}
	t.Notes = append(t.Notes,
		"denser gossip overlays spread blocks faster, lowering the fork rate β",
		"a lower β weakens the ESP's delay-protection premium: edge demand falls with overlay density")
	return Result{Tables: []Table{t}}, nil
}
