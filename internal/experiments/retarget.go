package experiments

// Difficulty-retargeting experiment: the paper's game assumes a constant
// network block interval (hence a constant fork rate β) no matter how
// much computing power the miners buy. This experiment runs the
// retargeting control loop through a 4× hash-power shock — for instance,
// the demand jump when a standalone ESP quadruples its capacity — and
// shows the realized interval snapping back to target within two epochs.

import (
	"fmt"

	"minegame/internal/chain"
	"minegame/internal/sim"
)

func runRetarget(cfg Config) (Result, error) {
	const (
		epochs    = 14
		shockAt   = 5
		basePower = 40.0
		shock     = 4.0
	)
	dc := chain.DifficultyConfig{
		TargetInterval:    blockInterval,
		Window:            cfg.rounds(2000),
		InitialDifficulty: blockInterval * basePower,
	}
	powerAt := func(epoch int) float64 {
		if epoch < shockAt {
			return basePower
		}
		return basePower * shock
	}
	stats, err := chain.SimulateDifficulty(dc, powerAt, epochs, sim.NewRNG(cfg.Seed, "retarget"))
	if err != nil {
		return Result{}, fmt.Errorf("retarget: %w", err)
	}
	t := Table{
		ID:      "retarget",
		Title:   "difficulty retargeting through a 4x hash-power shock",
		Columns: []string{"epoch", "hash_power", "difficulty", "mean_interval_s"},
	}
	for _, s := range stats {
		t.AddRow(float64(s.Epoch), s.HashPower, s.Difficulty, s.MeanInterval)
	}
	t.Notes = append(t.Notes,
		"the shock epoch mines ≈4x too fast; the clamped retarget restores the 600 s target within two windows",
		"this is the mechanism behind the game's constant-β assumption: the fork rate depends on delay/interval, and the interval is a controlled quantity")
	return Result{Tables: []Table{t}}, nil
}
