package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func demoTable() Table {
	tab := Table{ID: "demo", Title: "demo", Columns: []string{"x", "up", "down"}}
	for i := 0; i <= 10; i++ {
		x := float64(i)
		tab.AddRow(x, x*x, 100-10*x)
	}
	return tab
}

func TestAsciiPlotBasics(t *testing.T) {
	var buf bytes.Buffer
	tab := demoTable()
	if err := AsciiPlot(&buf, tab, "x", []string{"up", "down"}, 40, 10); err != nil {
		t.Fatalf("AsciiPlot: %v", err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 10 grid rows + axis + legend.
	if len(lines) != 13 {
		t.Fatalf("plot has %d lines, want 13:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("both series symbols must appear")
	}
	if !strings.Contains(out, "x: x") || !strings.Contains(out, "*: up") || !strings.Contains(out, "o: down") {
		t.Errorf("legend missing:\n%s", out)
	}
	// The increasing series peaks top-right: the first grid row must have
	// a '*' near its right edge.
	firstGrid := lines[1]
	if !strings.Contains(firstGrid[len(firstGrid)-6:], "*") {
		t.Errorf("increasing series should reach the top-right:\n%s", out)
	}
	// Axis labels include the y range.
	if !strings.Contains(out, "100") || !strings.Contains(out, "0") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestAsciiPlotSkipsNonFinite(t *testing.T) {
	tab := Table{ID: "naN", Title: "with gaps", Columns: []string{"x", "y"}}
	tab.AddRow(0, 1)
	tab.AddRow(1, math.NaN())
	tab.AddRow(2, 3)
	var buf bytes.Buffer
	if err := AsciiPlot(&buf, tab, "x", []string{"y"}, 20, 6); err != nil {
		t.Fatalf("AsciiPlot: %v", err)
	}
}

func TestAsciiPlotErrors(t *testing.T) {
	tab := demoTable()
	var buf bytes.Buffer
	if err := AsciiPlot(&buf, tab, "x", []string{"nope"}, 40, 10); err == nil {
		t.Error("want error for unknown column")
	}
	if err := AsciiPlot(&buf, tab, "nope", []string{"up"}, 40, 10); err == nil {
		t.Error("want error for unknown x column")
	}
	if err := AsciiPlot(&buf, tab, "x", []string{"up"}, 4, 2); err == nil {
		t.Error("want error for tiny plot area")
	}
	empty := Table{ID: "e", Columns: []string{"x", "y"}}
	empty.AddRow(math.NaN(), math.NaN())
	if err := AsciiPlot(&buf, empty, "x", []string{"y"}, 40, 10); err == nil {
		t.Error("want error for no finite points")
	}
}

func TestAsciiPlotConstantSeries(t *testing.T) {
	tab := Table{ID: "const", Title: "flat", Columns: []string{"x", "y"}}
	tab.AddRow(0, 5)
	tab.AddRow(1, 5)
	var buf bytes.Buffer
	if err := AsciiPlot(&buf, tab, "x", []string{"y"}, 20, 5); err != nil {
		t.Fatalf("flat series must plot: %v", err)
	}
}

func TestPlotTable(t *testing.T) {
	var buf bytes.Buffer
	if err := PlotTable(&buf, demoTable()); err != nil {
		t.Fatalf("PlotTable: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
	// Degenerate tables are skipped silently.
	buf.Reset()
	tiny := Table{ID: "t", Columns: []string{"only"}}
	if err := PlotTable(&buf, tiny); err != nil || buf.Len() != 0 {
		t.Errorf("degenerate table: err=%v len=%d", err, buf.Len())
	}
}
