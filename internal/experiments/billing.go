package experiments

// Billing-policy ablation: the paper bills every requested unit at list
// price even when the ESP transfers or rejects the request (Eq. 1a).
// Real providers bill what they serve. This experiment replays the
// default equilibrium through the service network under both policies
// and reports who the paper's convention favours.

import (
	"fmt"

	"minegame/internal/core"
	"minegame/internal/game"
	"minegame/internal/netmodel"
	"minegame/internal/sim"
)

func runAblBilling(cfg Config) (Result, error) {
	gameCfg := baseConfig()
	prices := defaultPrices()
	eq, err := core.SolveMinerEquilibrium(gameCfg, prices, game.NEOptions{})
	if err != nil {
		return Result{}, fmt.Errorf("ablbill equilibrium: %w", err)
	}
	reqs := make([]netmodel.Request, gameCfg.N)
	for i, r := range eq.Requests {
		reqs[i] = netmodel.Request{MinerID: i, Edge: r.E, Cloud: r.C}
	}
	rounds := cfg.rounds(20000)
	measure := func(billing netmodel.Billing) (avgBilled, avgEdgeRevenue, avgCloudRevenue float64, err error) {
		net := gameCfg.Network(prices, blockInterval)
		net.Billing = billing
		rng := sim.NewRNG(cfg.Seed, fmt.Sprintf("ablbill-%d", billing))
		for r := 0; r < rounds; r++ {
			outcomes, _, err := net.Serve(reqs, rng)
			if err != nil {
				return 0, 0, 0, err
			}
			for _, o := range outcomes {
				avgBilled += o.Billed
				// Attribute revenue by where the units ran under served
				// billing, and by the request under the paper's rule.
				if billing == netmodel.BillServed {
					avgEdgeRevenue += net.ESP.Price * o.EdgeServed
					avgCloudRevenue += net.CSP.Price * o.CloudServed
				} else {
					avgEdgeRevenue += net.ESP.Price * o.Request.Edge
					avgCloudRevenue += net.CSP.Price * o.Request.Cloud
				}
			}
		}
		n := float64(rounds)
		return avgBilled / n, avgEdgeRevenue / n, avgCloudRevenue / n, nil
	}
	t := Table{
		ID:      "ablbill",
		Title:   "billing policy at the default equilibrium: paper's bill-requested vs bill-served",
		Columns: []string{"policy", "miner_spend_per_round", "esp_revenue", "csp_revenue"},
		Notes: []string{
			"policy codes: 1 = bill requested units (the paper's Eq. 1a), 2 = bill served units",
			"under served billing a transferred request pays cloud price for everything, so the connected ESP loses its transfer markup and miners keep the difference",
		},
	}
	for i, billing := range []netmodel.Billing{netmodel.BillRequested, netmodel.BillServed} {
		billed, edgeRev, cloudRev, err := measure(billing)
		if err != nil {
			return Result{}, fmt.Errorf("ablbill policy %d: %w", i+1, err)
		}
		t.AddRow(float64(i+1), billed, edgeRev, cloudRev)
	}
	return Result{Tables: []Table{t}}, nil
}
