package experiments

// Seed replication: stochastic experiments (the RL-backed figures, the
// simulator checks) produce seed-dependent numbers. Replicate runs an
// experiment across several seeds and aggregates every cell into mean and
// sample standard deviation tables, giving the error bars the paper's
// single-run scatter points lack. The seed runs are independent — each
// owns its RNG, derived from its own seed — so they fan out over
// cfg.Parallel workers; the aggregation always walks seeds in order, so
// the output is bit-identical to a sequential run at any worker count.

import (
	"fmt"

	"minegame/internal/numeric"
	"minegame/internal/parallel"
)

// Replicate runs the experiment nSeeds times (seeds cfg.Seed, cfg.Seed+1,
// …) and returns, for every table of the experiment, a mean table and a
// standard-deviation table (IDs suffixed "_mean" / "_std"). The
// experiment must produce identically shaped tables for every seed, or
// an error is returned.
func Replicate(r Runner, cfg Config, nSeeds int) (Result, error) {
	if nSeeds < 2 {
		return Result{}, fmt.Errorf("experiments: replication needs at least 2 seeds, got %d", nSeeds)
	}
	seeds := make([]int64, nSeeds)
	for s := range seeds {
		seeds[s] = cfg.Seed + int64(s)
	}
	runs, err := parallel.Map(cfg.pool(), seeds, func(_ int, seed int64) (Result, error) {
		runCfg := cfg
		runCfg.Seed = seed
		res, err := r.Run(runCfg)
		if err != nil {
			return Result{}, fmt.Errorf("experiments: replicate %s seed %d: %w", r.ID, seed, err)
		}
		return res, nil
	})
	if err != nil {
		return Result{}, err
	}

	// samples[t][i][j] collects every seed's value of table t, cell (i,j),
	// in seed order.
	shape := runs[0].Tables
	samples := make([][][][]float64, len(shape))
	for t, tab := range shape {
		samples[t] = make([][][]float64, len(tab.Rows))
		for i, row := range tab.Rows {
			samples[t][i] = make([][]float64, len(row))
			for j := range row {
				samples[t][i][j] = make([]float64, 0, nSeeds)
			}
		}
	}
	for s, res := range runs {
		if len(res.Tables) != len(shape) {
			return Result{}, fmt.Errorf("experiments: replicate %s: table count changed across seeds (%d at seed %d vs %d at seed %d)",
				r.ID, len(res.Tables), seeds[s], len(shape), seeds[0])
		}
		for t, tab := range res.Tables {
			if len(tab.Rows) != len(shape[t].Rows) {
				return Result{}, fmt.Errorf("experiments: replicate %s: table %s shape changed across seeds (%d rows at seed %d vs %d at seed %d)",
					r.ID, tab.ID, len(tab.Rows), seeds[s], len(shape[t].Rows), seeds[0])
			}
			for i, row := range tab.Rows {
				if len(row) != len(shape[t].Rows[i]) {
					return Result{}, fmt.Errorf("experiments: replicate %s: table %s row %d shape changed across seeds (%d cells at seed %d vs %d at seed %d)",
						r.ID, tab.ID, i, len(row), seeds[s], len(shape[t].Rows[i]), seeds[0])
				}
				for j, v := range row {
					samples[t][i][j] = append(samples[t][i][j], v)
				}
			}
		}
	}
	out := Result{}
	for t, tab := range shape {
		mean := Table{
			ID:      tab.ID + "_mean",
			Title:   tab.Title + fmt.Sprintf(" (mean of %d seeds)", nSeeds),
			Columns: tab.Columns,
			Notes:   tab.Notes,
		}
		std := Table{
			ID:      tab.ID + "_std",
			Title:   tab.Title + fmt.Sprintf(" (std dev over %d seeds)", nSeeds),
			Columns: tab.Columns,
		}
		for i := range tab.Rows {
			meanRow := make([]float64, len(tab.Rows[i]))
			stdRow := make([]float64, len(tab.Rows[i]))
			for j := range tab.Rows[i] {
				s := numeric.Summarize(samples[t][i][j])
				meanRow[j] = s.Mean
				stdRow[j] = s.StdDev
			}
			mean.Rows = append(mean.Rows, meanRow)
			std.Rows = append(std.Rows, stdRow)
		}
		out.Tables = append(out.Tables, mean, std)
	}
	return out, nil
}
