package experiments

// Seed replication: stochastic experiments (the RL-backed figures, the
// simulator checks) produce seed-dependent numbers. Replicate runs an
// experiment across several seeds and aggregates every cell into mean and
// sample standard deviation tables, giving the error bars the paper's
// single-run scatter points lack.

import (
	"fmt"

	"minegame/internal/numeric"
)

// Replicate runs the experiment nSeeds times (seeds cfg.Seed, cfg.Seed+1,
// …) and returns, for every table of the experiment, a mean table and a
// standard-deviation table (IDs suffixed "_mean" / "_std"). The
// experiment must produce identically shaped tables for every seed.
func Replicate(r Runner, cfg Config, nSeeds int) (Result, error) {
	if nSeeds < 2 {
		return Result{}, fmt.Errorf("experiments: replication needs at least 2 seeds, got %d", nSeeds)
	}
	// samples[t][i][j] collects every seed's value of table t, cell (i,j).
	var samples [][][][]float64
	var shape []Table
	for s := 0; s < nSeeds; s++ {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + int64(s)
		res, err := r.Run(runCfg)
		if err != nil {
			return Result{}, fmt.Errorf("experiments: replicate %s seed %d: %w", r.ID, runCfg.Seed, err)
		}
		if s == 0 {
			shape = res.Tables
			samples = make([][][][]float64, len(res.Tables))
			for t, tab := range res.Tables {
				samples[t] = make([][][]float64, len(tab.Rows))
				for i, row := range tab.Rows {
					samples[t][i] = make([][]float64, len(row))
					for j := range row {
						samples[t][i][j] = make([]float64, 0, nSeeds)
					}
				}
			}
		}
		if len(res.Tables) != len(shape) {
			return Result{}, fmt.Errorf("experiments: replicate %s: table count changed across seeds", r.ID)
		}
		for t, tab := range res.Tables {
			if len(tab.Rows) != len(shape[t].Rows) {
				return Result{}, fmt.Errorf("experiments: replicate %s: table %s shape changed across seeds", r.ID, tab.ID)
			}
			for i, row := range tab.Rows {
				for j, v := range row {
					samples[t][i][j] = append(samples[t][i][j], v)
				}
			}
		}
	}
	out := Result{}
	for t, tab := range shape {
		mean := Table{
			ID:      tab.ID + "_mean",
			Title:   tab.Title + fmt.Sprintf(" (mean of %d seeds)", nSeeds),
			Columns: tab.Columns,
			Notes:   tab.Notes,
		}
		std := Table{
			ID:      tab.ID + "_std",
			Title:   tab.Title + fmt.Sprintf(" (std dev over %d seeds)", nSeeds),
			Columns: tab.Columns,
		}
		for i := range tab.Rows {
			meanRow := make([]float64, len(tab.Rows[i]))
			stdRow := make([]float64, len(tab.Rows[i]))
			for j := range tab.Rows[i] {
				s := numeric.Summarize(samples[t][i][j])
				meanRow[j] = s.Mean
				stdRow[j] = s.StdDev
			}
			mean.Rows = append(mean.Rows, meanRow)
			std.Rows = append(std.Rows, stdRow)
		}
		out.Tables = append(out.Tables, mean, std)
	}
	return out, nil
}
