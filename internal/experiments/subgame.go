package experiments

// Miner-subgame experiments: Fig. 4 (influence of the CSP price), Fig. 5
// (SP revenues nearly constant), Fig. 6 (standalone capacity and the CSP
// price crossover), and Fig. 7 (budget influence).

import (
	"fmt"

	"minegame/internal/chain"
	"minegame/internal/core"
	"minegame/internal/game"
	"minegame/internal/miner"
	"minegame/internal/numeric"
	"minegame/internal/parallel"
)

// runFig4 regenerates Fig. 4: the homogeneous connected-mode miner
// equilibrium as the CSP unilaterally raises its price — miners shift to
// the ESP, raising ESP demand and revenue. The price points are
// independent equilibrium solves and fan out over exp.Parallel workers.
func runFig4(exp Config) (Result, error) {
	cfg := baseConfig()
	t := Table{
		ID:    "fig4",
		Title: "miner NE vs CSP price (connected, homogeneous, B=200, P_e=8)",
		Columns: []string{
			"P_c", "e_star", "c_star", "E", "C",
			"esp_revenue", "csp_revenue", "esp_profit", "csp_profit",
		},
	}
	rows, err := parallel.Map(exp.pool(), numeric.Linspace(2, 6.5, 10), func(_ int, pc float64) ([]float64, error) {
		p := core.Prices{Edge: defaultPriceE, Cloud: pc}
		eq, err := core.SolveMinerEquilibrium(cfg, p, game.NEOptions{})
		if err != nil {
			return nil, fmt.Errorf("fig4 P_c=%g: %w", pc, err)
		}
		if err := exp.certify(cfg, p, eq); err != nil {
			return nil, fmt.Errorf("fig4 P_c=%g: %w", pc, err)
		}
		return []float64{pc,
			eq.Requests[0].E, eq.Requests[0].C,
			eq.EdgeDemand, eq.CloudDemand,
			p.Edge * eq.EdgeDemand, pc * eq.CloudDemand,
			(p.Edge - cfg.CostE) * eq.EdgeDemand, (pc - cfg.CostC) * eq.CloudDemand,
		}, nil
	})
	if err != nil {
		return Result{}, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "raising P_c pushes miners toward the ESP: E and the ESP revenue rise")
	return Result{Tables: []Table{t}}, nil
}

// runFig5 regenerates Fig. 5: SP revenues as prices and the fork rate
// vary; with binding budgets the total SP revenue stays near the total
// miner budget n·B.
func runFig5(exp Config) (Result, error) {
	t := Table{
		ID:      "fig5",
		Title:   "SP revenues vs CSP price and fork rate (connected, homogeneous)",
		Columns: []string{"beta", "P_c", "esp_revenue", "csp_revenue", "total_revenue"},
	}
	// A tighter budget keeps miners budget-bound so the revenue split —
	// not the total — responds to prices (the paper's Fig. 5(c)).
	cfg := baseConfig()
	cfg.Budgets = []float64{120}
	type point struct{ beta, pc float64 }
	var points []point
	for _, beta := range []float64{0.1, 0.2, 0.3} {
		for _, pc := range numeric.Linspace(2, 5.5, 8) {
			points = append(points, point{beta, pc})
		}
	}
	rows, err := parallel.Map(exp.pool(), points, func(_ int, pt point) ([]float64, error) {
		c := cfg
		c.Beta = pt.beta
		p := core.Prices{Edge: defaultPriceE, Cloud: pt.pc}
		eq, err := core.SolveMinerEquilibrium(c, p, game.NEOptions{})
		if err != nil {
			return nil, fmt.Errorf("fig5 beta=%g P_c=%g: %w", pt.beta, pt.pc, err)
		}
		if err := exp.certify(c, p, eq); err != nil {
			return nil, fmt.Errorf("fig5 beta=%g P_c=%g: %w", pt.beta, pt.pc, err)
		}
		re := p.Edge * eq.EdgeDemand
		rc := pt.pc * eq.CloudDemand
		return []float64{pt.beta, pt.pc, re, rc, re + rc}, nil
	})
	if err != nil {
		return Result{}, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "total revenue is pinned near the aggregate miner budget n·B = 600")
	return Result{Tables: []Table{t}}, nil
}

// runFig6 regenerates Fig. 6: (a) standalone edge demand grows with the
// ESP capacity and exceeds the connected-mode demand (the connected mode
// discourages edge purchases); (b) the CSP's optimal price falls as its
// communication delay grows, producing the crossover the paper notes.
func runFig6(exp Config) (Result, error) {
	prices := defaultPrices()
	a := Table{
		ID:      "fig6a",
		Title:   "edge demand vs standalone capacity E_max (P_e=8, P_c=4) with the connected-mode baseline",
		Columns: []string{"E_max", "standalone_E", "connected_E", "multiplier"},
	}
	conn := baseConfig()
	connEq, err := core.SolveMinerEquilibrium(conn, prices, game.NEOptions{})
	if err != nil {
		return Result{}, fmt.Errorf("fig6 connected baseline: %w", err)
	}
	if err := exp.certify(conn, prices, connEq); err != nil {
		return Result{}, fmt.Errorf("fig6 connected baseline: %w", err)
	}
	rows, err := parallel.Map(exp.pool(), []float64{10, 15, 20, 25, 30, 35, 40, 50, 60, 80}, func(_ int, emax float64) ([]float64, error) {
		cfg := standaloneConfig()
		cfg.EdgeCapacity = emax
		eq, err := core.SolveMinerEquilibrium(cfg, prices, game.NEOptions{})
		if err != nil {
			return nil, fmt.Errorf("fig6 E_max=%g: %w", emax, err)
		}
		if err := exp.certify(cfg, prices, eq); err != nil {
			return nil, fmt.Errorf("fig6 E_max=%g: %w", emax, err)
		}
		return []float64{emax, eq.EdgeDemand, connEq.EdgeDemand, eq.Multiplier}, nil
	})
	if err != nil {
		return Result{}, err
	}
	a.Rows = rows
	a.Notes = append(a.Notes,
		"standalone demand tracks capacity until the unconstrained optimum (40 units); the connected mode discourages edge purchases")

	b := Table{
		ID:      "fig6b",
		Title:   "CSP optimal price vs communication delay (standalone, E_max in {25, 40})",
		Columns: []string{"delay_s", "beta", "pc_star_emax25", "pc_star_emax40"},
	}
	for _, d := range []float64{30, 60, 90, 134, 180, 240, 330, 420} {
		beta := chain.CollisionCDF(d, blockInterval)
		b.AddRow(d, beta,
			miner.OptimalPriceCloudStandalone(defaultReward, beta, defaultCostC, defaultN, 25),
			miner.OptimalPriceCloudStandalone(defaultReward, beta, defaultCostC, defaultN, 40),
		)
	}
	b.Notes = append(b.Notes, "the longer the delay (higher beta), the lower the CSP's optimal price")
	return Result{Tables: []Table{a, b}}, nil
}

// runFig7 regenerates Fig. 7: miner 1's requests and utility as its
// budget sweeps 20→200 (the other four miners keep budget 110), at two
// fork rates to show the near-insensitivity of its total request to the
// CSP delay.
func runFig7(exp Config) (Result, error) {
	t := Table{
		ID:    "fig7",
		Title: "miner 1 requests/utility vs its budget (others fixed at 110)",
		Columns: []string{
			"B_1", "beta", "e_1", "c_1", "total_1", "utility_1", "avg_other_utility",
		},
	}
	type point struct{ beta, b1 float64 }
	var points []point
	for _, beta := range []float64{0.15, 0.3} {
		for _, b1 := range numeric.Linspace(20, 200, 10) {
			points = append(points, point{beta, b1})
		}
	}
	rows, err := parallel.Map(exp.pool(), points, func(_ int, pt point) ([]float64, error) {
		cfg := baseConfig()
		cfg.Beta = pt.beta
		cfg.Budgets = []float64{pt.b1, 110, 110, 110, 110}
		eq, err := core.SolveMinerEquilibrium(cfg, defaultPrices(), game.NEOptions{})
		if err != nil {
			return nil, fmt.Errorf("fig7 beta=%g B1=%g: %w", pt.beta, pt.b1, err)
		}
		if err := exp.certify(cfg, defaultPrices(), eq); err != nil {
			return nil, fmt.Errorf("fig7 beta=%g B1=%g: %w", pt.beta, pt.b1, err)
		}
		var others float64
		for _, u := range eq.Utilities[1:] {
			others += u
		}
		return []float64{pt.b1, pt.beta,
			eq.Requests[0].E, eq.Requests[0].C,
			eq.Requests[0].E + eq.Requests[0].C,
			eq.Utilities[0], others / float64(len(eq.Utilities)-1),
		}, nil
	})
	if err != nil {
		return Result{}, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "requests and utility grow with the budget until it stops binding")
	return Result{Tables: []Table{t}}, nil
}
