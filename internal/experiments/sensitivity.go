package experiments

// One-at-a-time parameter sensitivity of the connected-mode equilibrium:
// each game constant is perturbed by ±10% around the defaults and the
// elasticity of the per-miner edge and cloud requests is reported —
// a compact numerical companion to the closed forms of Theorem 3.

import (
	"fmt"

	"minegame/internal/core"
	"minegame/internal/game"
	"minegame/internal/parallel"
)

// sensitivityKnob names one perturbable parameter.
type sensitivityKnob struct {
	code  float64 // numeric code used in the table
	name  string
	apply func(cfg *core.Config, p *core.Prices, factor float64)
}

func sensitivityKnobs() []sensitivityKnob {
	return []sensitivityKnob{
		{1, "reward R", func(c *core.Config, _ *core.Prices, f float64) { c.Reward *= f }},
		{2, "fork rate beta", func(c *core.Config, _ *core.Prices, f float64) { c.Beta *= f }},
		{3, "satisfy prob h", func(c *core.Config, _ *core.Prices, f float64) { c.SatisfyProb *= f }},
		{4, "budget B", func(c *core.Config, _ *core.Prices, f float64) { c.Budgets[0] *= f }},
		{5, "edge price P_e", func(_ *core.Config, p *core.Prices, f float64) { p.Edge *= f }},
		{6, "cloud price P_c", func(_ *core.Config, p *core.Prices, f float64) { p.Cloud *= f }},
	}
}

func runSensitivity(exp Config) (Result, error) {
	base := baseConfig()
	basePrices := defaultPrices()
	baseEq, err := core.SolveMinerEquilibrium(base, basePrices, game.NEOptions{})
	if err != nil {
		return Result{}, fmt.Errorf("sensitivity baseline: %w", err)
	}
	e0, c0 := baseEq.Requests[0].E, baseEq.Requests[0].C

	t := Table{
		ID:    "sens",
		Title: "±10% parameter sensitivity of the connected equilibrium (elasticities of e*, c*)",
		Columns: []string{
			"knob", "e_minus10", "e_plus10", "c_minus10", "c_plus10",
			"elasticity_e", "elasticity_c",
		},
		Notes: []string{
			"knob codes: 1=R, 2=β, 3=h, 4=B, 5=P_e, 6=P_c",
			fmt.Sprintf("baseline e*=%.4f c*=%.4f at the defaults", e0, c0),
			"elasticity = (Δq/q) / (Δp/p) from the central ±10%% difference",
		},
	}
	rows, err := parallel.Map(exp.pool(), sensitivityKnobs(), func(_ int, knob sensitivityKnob) ([]float64, error) {
		solveAt := func(factor float64) (float64, float64, error) {
			cfg := base
			cfg.Budgets = append([]float64(nil), base.Budgets...)
			prices := basePrices
			knob.apply(&cfg, &prices, factor)
			eq, err := core.SolveMinerEquilibrium(cfg, prices, game.NEOptions{})
			if err != nil {
				return 0, 0, fmt.Errorf("knob %s factor %g: %w", knob.name, factor, err)
			}
			return eq.Requests[0].E, eq.Requests[0].C, nil
		}
		eLo, cLo, err := solveAt(0.9)
		if err != nil {
			return nil, err
		}
		eHi, cHi, err := solveAt(1.1)
		if err != nil {
			return nil, err
		}
		elasticity := func(lo, hi, base float64) float64 {
			if base == 0 {
				return 0
			}
			return ((hi - lo) / base) / 0.2
		}
		return []float64{knob.code, eLo, eHi, cLo, cHi, elasticity(eLo, eHi, e0), elasticity(cLo, cHi, c0)}, nil
	})
	if err != nil {
		return Result{}, err
	}
	t.Rows = rows
	return Result{Tables: []Table{t}}, nil
}
