package netmodel

// Endogenous transfer probability. The paper treats the connected ESP's
// satisfy probability h as an exogenous "empirical value" (§II-A). This
// file closes the loop: if the ESP owns C physical computing units and
// mining jobs arrive as a Poisson stream with offered load A (in Erlangs,
// i.e. mean number of busy units demanded), the probability that a
// request finds every unit busy — and is therefore transferred to the
// CSP — is the Erlang-B loss formula. The satisfy probability becomes
//
//	h(A, C) = 1 − B(C, A),
//
// which lets experiments study how the transfer rate reacts to the
// miners' own aggregate demand instead of being fixed by fiat.

import (
	"fmt"
	"math"
)

// ErlangB returns the blocking probability B(servers, offered) of an
// M/M/c/c loss system: the probability an arriving job is lost (for the
// ESP: transferred) because all servers are busy. It uses the standard
// numerically stable recurrence
//
//	B(0, A) = 1,  B(k, A) = A·B(k−1, A) / (k + A·B(k−1, A)),
//
// extended to non-integral server counts by linear interpolation between
// the neighbouring integers. offered must be non-negative and servers
// positive.
func ErlangB(servers, offered float64) (float64, error) {
	if servers <= 0 {
		return 0, fmt.Errorf("netmodel: erlang-b needs positive servers, got %g", servers)
	}
	if offered < 0 {
		return 0, fmt.Errorf("netmodel: erlang-b needs non-negative load, got %g", offered)
	}
	if offered == 0 {
		return 0, nil
	}
	lo := math.Floor(servers)
	frac := servers - lo
	bLo := erlangBInt(int(lo), offered)
	if frac == 0 {
		return bLo, nil
	}
	bHi := erlangBInt(int(lo)+1, offered)
	return bLo + frac*(bHi-bLo), nil
}

func erlangBInt(c int, a float64) float64 {
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

// SatisfyProbForLoad returns the endogenous connected-mode satisfy
// probability h = 1 − B(capacity, demand): the chance an edge request is
// served locally when the ESP owns `capacity` computing units and the
// miners collectively keep `demand` units of work offered.
func SatisfyProbForLoad(capacity, demand float64) (float64, error) {
	b, err := ErlangB(capacity, demand)
	if err != nil {
		return 0, err
	}
	return 1 - b, nil
}

// EndogenousSatisfyProb solves the self-consistent transfer rate for a
// demand curve: the miners' edge demand depends on h (a more reliable ESP
// attracts more jobs), while h depends on the demand through the loss
// formula. demandAt must return the aggregate edge demand the miner
// subgame produces at a given h. The fixed point
//
//	h* = 1 − B(capacity, demand(h*))
//
// is located by damped iteration; existence follows from continuity of
// both maps on [0, 1].
func EndogenousSatisfyProb(capacity float64, demandAt func(h float64) (float64, error)) (h, demand float64, err error) {
	if capacity <= 0 {
		return 0, 0, fmt.Errorf("netmodel: endogenous h needs positive capacity, got %g", capacity)
	}
	h = 0.9
	const (
		maxIter = 200
		damping = 0.5
		tol     = 1e-9
	)
	for i := 0; i < maxIter; i++ {
		demand, err = demandAt(h)
		if err != nil {
			return 0, 0, fmt.Errorf("netmodel: endogenous h at h=%.6f: %w", h, err)
		}
		next, err := SatisfyProbForLoad(capacity, demand)
		if err != nil {
			return 0, 0, err
		}
		blended := h + damping*(next-h)
		if math.Abs(blended-h) < tol {
			return blended, demand, nil
		}
		h = blended
	}
	return h, demand, nil
}
