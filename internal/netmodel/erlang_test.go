package netmodel

import (
	"errors"
	"math"
	"testing"
)

func TestErlangBKnownValues(t *testing.T) {
	// Textbook values of the Erlang-B blocking probability.
	tests := []struct {
		servers, offered, want float64
	}{
		{1, 1, 0.5},       // B(1,1) = 1/(1+1)
		{2, 1, 0.2},       // B(2,1) = (1/2)/(1+1+1/2) = 0.2
		{1, 2, 2.0 / 3.0}, // B(1,2) = 2/(1+2)
		{5, 3, 0.110054},  // standard table value
		{10, 8, 0.121661}, // standard table value
	}
	for _, tt := range tests {
		got, err := ErlangB(tt.servers, tt.offered)
		if err != nil {
			t.Fatalf("ErlangB(%g, %g): %v", tt.servers, tt.offered, err)
		}
		if math.Abs(got-tt.want) > 1e-5 {
			t.Errorf("ErlangB(%g, %g) = %.7f, want %.7f", tt.servers, tt.offered, got, tt.want)
		}
	}
}

// TestErlangBAgainstDirectSum cross-checks the recurrence against the
// defining formula B(c, A) = (A^c/c!) / Σ_{k≤c} A^k/k!.
func TestErlangBAgainstDirectSum(t *testing.T) {
	direct := func(c int, a float64) float64 {
		term := 1.0 // A^0/0!
		sum := term
		for k := 1; k <= c; k++ {
			term *= a / float64(k)
			sum += term
		}
		return term / sum
	}
	for _, c := range []int{1, 2, 5, 10, 20, 40} {
		for _, a := range []float64{0.5, 1, 3, 8, 15, 30} {
			got, err := ErlangB(float64(c), a)
			if err != nil {
				t.Fatal(err)
			}
			if want := direct(c, a); math.Abs(got-want) > 1e-12 {
				t.Errorf("B(%d, %g) = %.15f, direct sum %.15f", c, a, got, want)
			}
		}
	}
}

func TestErlangBProperties(t *testing.T) {
	// Monotone increasing in load, decreasing in servers; bounded in [0,1).
	prev := -1.0
	for _, a := range []float64{0, 0.5, 1, 2, 4, 8, 16, 64} {
		b, err := ErlangB(5, a)
		if err != nil {
			t.Fatal(err)
		}
		if b < prev {
			t.Errorf("blocking not monotone in load at A=%g", a)
		}
		if b < 0 || b >= 1 {
			t.Errorf("blocking %g outside [0,1)", b)
		}
		prev = b
	}
	prev = 2
	for _, c := range []float64{1, 2, 4, 8, 16} {
		b, err := ErlangB(c, 5)
		if err != nil {
			t.Fatal(err)
		}
		if b > prev {
			t.Errorf("blocking not decreasing in servers at c=%g", c)
		}
		prev = b
	}
}

func TestErlangBFractionalServers(t *testing.T) {
	b2, _ := ErlangB(2, 3)
	b3, _ := ErlangB(3, 3)
	mid, err := ErlangB(2.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mid > b2 || mid < b3 {
		t.Errorf("fractional interpolation %g outside [%g, %g]", mid, b3, b2)
	}
	if math.Abs(mid-(b2+b3)/2) > 1e-12 {
		t.Errorf("midpoint interpolation %g, want %g", mid, (b2+b3)/2)
	}
}

func TestErlangBErrors(t *testing.T) {
	if _, err := ErlangB(0, 1); err == nil {
		t.Error("want error for zero servers")
	}
	if _, err := ErlangB(3, -1); err == nil {
		t.Error("want error for negative load")
	}
}

func TestSatisfyProbForLoad(t *testing.T) {
	h, err := SatisfyProbForLoad(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.5) > 1e-12 {
		t.Errorf("h = %g, want 0.5", h)
	}
	h, err = SatisfyProbForLoad(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.999999 {
		t.Errorf("overprovisioned ESP must almost always satisfy: h = %g", h)
	}
}

func TestEndogenousSatisfyProbFixedPoint(t *testing.T) {
	// Demand rises with reliability: demand(h) = 4 + 8h. The fixed point
	// must satisfy both equations simultaneously.
	demandAt := func(h float64) (float64, error) { return 4 + 8*h, nil }
	const capacity = 10.0
	h, demand, err := EndogenousSatisfyProb(capacity, demandAt)
	if err != nil {
		t.Fatalf("EndogenousSatisfyProb: %v", err)
	}
	if math.Abs(demand-(4+8*h)) > 1e-6 {
		t.Errorf("demand %g inconsistent with h %g", demand, h)
	}
	want, err := SatisfyProbForLoad(capacity, demand)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-want) > 1e-6 {
		t.Errorf("h = %g, want self-consistent %g", h, want)
	}
	if h <= 0 || h >= 1 {
		t.Errorf("h = %g outside (0,1)", h)
	}
}

func TestEndogenousSatisfyProbErrors(t *testing.T) {
	if _, _, err := EndogenousSatisfyProb(0, func(float64) (float64, error) { return 1, nil }); err == nil {
		t.Error("want error for zero capacity")
	}
	sentinel := errors.New("demand oracle failed")
	if _, _, err := EndogenousSatisfyProb(5, func(float64) (float64, error) { return 0, sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
}
