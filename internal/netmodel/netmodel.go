// Package netmodel models the two-provider edge-cloud network of the
// mining game: an edge service provider (ESP) with limited computing
// capability operating in connected or standalone mode, and a cloud
// service provider (CSP) with unlimited capacity but a propagation delay
// that induces blockchain forks.
//
// The package provides typed configuration, request-service semantics
// (satisfied / transferred / rejected, per §III-C of the paper), billing
// and profit accounting, and the adapter that turns service outcomes into
// hash-power allocations for the chain substrate.
package netmodel

import (
	"fmt"
	"math/rand"

	"minegame/internal/chain"
)

// Mode is the ESP's operation mode.
type Mode int

const (
	// Connected means an overloaded ESP automatically transfers requests
	// to the CSP (with probability 1−h in expectation).
	Connected Mode = iota + 1
	// Standalone means an overloaded ESP rejects requests outright.
	Standalone
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Connected:
		return "connected"
	case Standalone:
		return "standalone"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ESP configures the edge service provider.
type ESP struct {
	Mode Mode
	// SatisfyProb is h: the probability a request to the connected ESP is
	// served at the edge rather than transferred to the CSP. Ignored in
	// standalone mode.
	SatisfyProb float64
	// Capacity is E_max, the standalone ESP's total computing units.
	// Ignored in connected mode.
	Capacity float64
	// Cost is the ESP's unit operating cost C_e.
	Cost float64
	// Price is the ESP's unit price P_e.
	Price float64
}

// CSP configures the cloud service provider.
type CSP struct {
	// Cost is the CSP's unit operating cost C_c.
	Cost float64
	// Price is the CSP's unit price P_c.
	Price float64
	// Delay is D_avg, the communication delay between the CSP and the
	// ESP/miners, in the same time unit as Network.BlockInterval.
	Delay float64
}

// Billing selects how serviced requests are charged.
type Billing int

const (
	// BillRequested charges list price for every requested unit, whatever
	// happened to it — the paper's Eq. 1a semantics (the zero value).
	BillRequested Billing = iota
	// BillServed charges only for units that actually ran: a transferred
	// request pays the CSP price for all its units, a rejected edge
	// request pays nothing for the rejected part.
	BillServed
)

// Network bundles both providers with the blockchain timing that converts
// the CSP delay into a fork rate.
type Network struct {
	ESP ESP
	CSP CSP
	// BlockInterval is the network's mean block inter-arrival time τ.
	BlockInterval float64
	// Billing selects the charging policy; the zero value is the paper's
	// bill-as-requested rule.
	Billing Billing
}

// Validate reports configuration errors.
func (n Network) Validate() error {
	switch n.ESP.Mode {
	case Connected:
		if n.ESP.SatisfyProb < 0 || n.ESP.SatisfyProb > 1 {
			return fmt.Errorf("netmodel: satisfy probability h=%g outside [0,1]", n.ESP.SatisfyProb)
		}
	case Standalone:
		if n.ESP.Capacity <= 0 {
			return fmt.Errorf("netmodel: standalone capacity E_max=%g must be positive", n.ESP.Capacity)
		}
	default:
		return fmt.Errorf("netmodel: unknown ESP mode %d", int(n.ESP.Mode))
	}
	if n.ESP.Price <= 0 || n.CSP.Price <= 0 {
		return fmt.Errorf("netmodel: prices P_e=%g, P_c=%g must be positive", n.ESP.Price, n.CSP.Price)
	}
	if n.ESP.Cost < 0 || n.CSP.Cost < 0 {
		return fmt.Errorf("netmodel: costs C_e=%g, C_c=%g must be non-negative", n.ESP.Cost, n.CSP.Cost)
	}
	if n.CSP.Delay < 0 {
		return fmt.Errorf("netmodel: CSP delay %g must be non-negative", n.CSP.Delay)
	}
	if n.BlockInterval <= 0 {
		return fmt.Errorf("netmodel: block interval %g must be positive", n.BlockInterval)
	}
	return nil
}

// Beta returns the blockchain fork rate β induced by the CSP delay: the
// probability of a conflicting block during one propagation window
// (chain.CollisionCDF). The paper treats β as a constant of the game; this
// is the substrate-level source of that constant.
func (n Network) Beta() float64 {
	return chain.CollisionCDF(n.CSP.Delay, n.BlockInterval)
}

// Request is a miner's request vector r_i = [e_i, c_i].
type Request struct {
	MinerID int
	Edge    float64
	Cloud   float64
}

// Spend returns the billed cost of the request under the network's
// prices. Billing follows the paper's utility (Eq. 1a): miners pay for
// what they requested, regardless of transfers or rejections.
func (n Network) Spend(r Request) float64 {
	return n.ESP.Price*r.Edge + n.CSP.Price*r.Cloud
}

// OutcomeKind describes how the ESP disposed of a request's edge part.
type OutcomeKind int

const (
	// FullySatisfied means the edge request ran at the edge.
	FullySatisfied OutcomeKind = iota + 1
	// Transferred means a connected ESP pushed the edge request to the
	// CSP (request degraded to [0, e+c], Eq. 7).
	Transferred
	// Rejected means a standalone ESP refused the edge request (request
	// degraded to [0, c], Eq. 8).
	Rejected
)

// String implements fmt.Stringer.
func (k OutcomeKind) String() string {
	switch k {
	case FullySatisfied:
		return "satisfied"
	case Transferred:
		return "transferred"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("outcome(%d)", int(k))
	}
}

// Outcome is the service result for one request.
type Outcome struct {
	Request     Request
	Kind        OutcomeKind
	EdgeServed  float64 // units actually running at the edge
	CloudServed float64 // units actually running at the cloud
	Billed      float64 // what the miner pays (requested units at list prices)
}

// ServiceSummary aggregates a service round.
type ServiceSummary struct {
	EdgeDemand  float64 // Σ e_i requested
	CloudDemand float64 // Σ c_i requested
	EdgeServed  float64 // Σ units running at the edge
	CloudServed float64 // Σ units running at the cloud
	Transferred int     // count of transferred requests
	Rejected    int     // count of rejected requests
}

// Serve applies the ESP's mode semantics to a batch of requests.
//
// Connected mode: each request with a positive edge part is independently
// satisfied with probability h and otherwise transferred; rng drives the
// coin flips and must be non-nil when h < 1.
//
// Standalone mode: requests are admitted in slice order while cumulative
// edge demand fits within Capacity; a request that does not fit is
// rejected whole (the paper's Eq. 8 semantics). rng may be nil.
func (n Network) Serve(reqs []Request, rng *rand.Rand) ([]Outcome, ServiceSummary, error) {
	if err := n.Validate(); err != nil {
		return nil, ServiceSummary{}, err
	}
	outcomes := make([]Outcome, 0, len(reqs))
	var sum ServiceSummary
	var used float64
	for _, r := range reqs {
		if r.Edge < 0 || r.Cloud < 0 {
			return nil, ServiceSummary{}, fmt.Errorf("netmodel: miner %d request has negative units", r.MinerID)
		}
		o := Outcome{Request: r, Kind: FullySatisfied}
		sum.EdgeDemand += r.Edge
		sum.CloudDemand += r.Cloud
		switch n.ESP.Mode {
		case Connected:
			transfer := false
			if r.Edge > 0 && n.ESP.SatisfyProb < 1 {
				if rng == nil {
					return nil, ServiceSummary{}, fmt.Errorf("netmodel: connected mode with h=%g < 1 needs an rng", n.ESP.SatisfyProb)
				}
				transfer = rng.Float64() >= n.ESP.SatisfyProb
			}
			if transfer {
				o.Kind = Transferred
				o.EdgeServed = 0
				o.CloudServed = r.Edge + r.Cloud
				sum.Transferred++
			} else {
				o.EdgeServed = r.Edge
				o.CloudServed = r.Cloud
			}
		case Standalone:
			if used+r.Edge <= n.ESP.Capacity+1e-12 {
				used += r.Edge
				o.EdgeServed = r.Edge
				o.CloudServed = r.Cloud
			} else {
				o.Kind = Rejected
				o.EdgeServed = 0
				o.CloudServed = r.Cloud
				sum.Rejected++
			}
		}
		if n.Billing == BillServed {
			o.Billed = n.ESP.Price*o.EdgeServed + n.CSP.Price*o.CloudServed
		} else {
			o.Billed = n.Spend(r)
		}
		sum.EdgeServed += o.EdgeServed
		sum.CloudServed += o.CloudServed
		outcomes = append(outcomes, o)
	}
	return outcomes, sum, nil
}

// ESPProfit is V_e = (P_e − C_e)·E on requested demand, the paper's
// leader objective (Eq. 2a).
func (n Network) ESPProfit(sum ServiceSummary) float64 {
	return (n.ESP.Price - n.ESP.Cost) * sum.EdgeDemand
}

// CSPProfit is V_c = (P_c − C_c)·C on requested demand (Eq. 2b).
func (n Network) CSPProfit(sum ServiceSummary) float64 {
	return (n.CSP.Price - n.CSP.Cost) * sum.CloudDemand
}

// Allocations converts service outcomes into hash-power allocations for
// the chain substrate: units served at the edge hash with zero consensus
// delay, units served at the cloud (including transfers) hash behind the
// CSP delay.
func Allocations(outcomes []Outcome) []chain.Allocation {
	allocs := make([]chain.Allocation, 0, len(outcomes))
	for _, o := range outcomes {
		allocs = append(allocs, chain.Allocation{
			MinerID: o.Request.MinerID,
			Edge:    o.EdgeServed,
			Cloud:   o.CloudServed,
		})
	}
	return allocs
}

// RaceConfig assembles a chain.RaceConfig from service outcomes.
func (n Network) RaceConfig(outcomes []Outcome) chain.RaceConfig {
	return chain.RaceConfig{
		Interval:    n.BlockInterval,
		CloudDelay:  n.CSP.Delay,
		Allocations: Allocations(outcomes),
	}
}
