package netmodel

import (
	"math"
	"strings"
	"testing"

	"minegame/internal/chain"
	"minegame/internal/sim"
)

func connectedNet() Network {
	return Network{
		ESP:           ESP{Mode: Connected, SatisfyProb: 0.7, Cost: 2, Price: 8},
		CSP:           CSP{Cost: 1, Price: 4, Delay: 120},
		BlockInterval: 600,
	}
}

func standaloneNet() Network {
	return Network{
		ESP:           ESP{Mode: Standalone, Capacity: 10, Cost: 2, Price: 8},
		CSP:           CSP{Cost: 1, Price: 4, Delay: 120},
		BlockInterval: 600,
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Network)
		wantErr string
	}{
		{"valid connected", func(*Network) {}, ""},
		{"bad h", func(n *Network) { n.ESP.SatisfyProb = 1.5 }, "satisfy probability"},
		{"bad mode", func(n *Network) { n.ESP.Mode = 0 }, "unknown ESP mode"},
		{"bad esp price", func(n *Network) { n.ESP.Price = 0 }, "prices"},
		{"bad csp price", func(n *Network) { n.CSP.Price = -1 }, "prices"},
		{"negative cost", func(n *Network) { n.CSP.Cost = -0.1 }, "costs"},
		{"negative delay", func(n *Network) { n.CSP.Delay = -1 }, "delay"},
		{"zero interval", func(n *Network) { n.BlockInterval = 0 }, "block interval"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n := connectedNet()
			tt.mutate(&n)
			err := n.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tt.wantErr)
			}
		})
	}
	t.Run("standalone needs capacity", func(t *testing.T) {
		n := standaloneNet()
		n.ESP.Capacity = 0
		if err := n.Validate(); err == nil {
			t.Error("want error for zero capacity")
		}
	})
}

func TestBetaFromDelay(t *testing.T) {
	n := connectedNet()
	want := chain.CollisionCDF(120, 600)
	if got := n.Beta(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Beta = %g, want %g", got, want)
	}
	n.CSP.Delay = 0
	if got := n.Beta(); got != 0 {
		t.Errorf("Beta with zero delay = %g", got)
	}
}

func TestSpend(t *testing.T) {
	n := connectedNet()
	r := Request{MinerID: 1, Edge: 2, Cloud: 3}
	if got := n.Spend(r); got != 8*2+4*3 {
		t.Errorf("Spend = %g, want 28", got)
	}
}

func TestServeConnectedTransferRate(t *testing.T) {
	n := connectedNet()
	rng := sim.NewRNG(5, "serve-connected")
	reqs := []Request{{MinerID: 1, Edge: 3, Cloud: 1}}
	transferred := 0
	const rounds = 20000
	for i := 0; i < rounds; i++ {
		outs, sum, err := n.Serve(reqs, rng)
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
		o := outs[0]
		switch o.Kind {
		case Transferred:
			transferred++
			if o.EdgeServed != 0 || o.CloudServed != 4 {
				t.Fatalf("transferred outcome = %+v, want degraded to [0, e+c]", o)
			}
			if sum.EdgeServed != 0 || sum.CloudServed != 4 {
				t.Fatalf("summary %+v inconsistent with transfer", sum)
			}
		case FullySatisfied:
			if o.EdgeServed != 3 || o.CloudServed != 1 {
				t.Fatalf("satisfied outcome = %+v", o)
			}
		default:
			t.Fatalf("unexpected kind %v in connected mode", o.Kind)
		}
		if o.Billed != 28 {
			t.Fatalf("billing must not depend on outcome: %g", o.Billed)
		}
		if sum.EdgeDemand != 3 || sum.CloudDemand != 1 {
			t.Fatalf("demand summary %+v", sum)
		}
	}
	got := float64(transferred) / rounds
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("transfer rate = %.3f, want ≈0.3 (1−h)", got)
	}
}

func TestServeConnectedNoRNGNeededWhenAlwaysSatisfied(t *testing.T) {
	n := connectedNet()
	n.ESP.SatisfyProb = 1
	outs, _, err := n.Serve([]Request{{MinerID: 1, Edge: 2, Cloud: 2}}, nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if outs[0].Kind != FullySatisfied {
		t.Errorf("kind = %v", outs[0].Kind)
	}
}

func TestServeConnectedRequiresRNG(t *testing.T) {
	n := connectedNet()
	if _, _, err := n.Serve([]Request{{MinerID: 1, Edge: 1}}, nil); err == nil {
		t.Error("want error when h < 1 and rng is nil")
	}
}

func TestServeStandaloneCapacity(t *testing.T) {
	n := standaloneNet() // capacity 10
	reqs := []Request{
		{MinerID: 1, Edge: 6, Cloud: 1},
		{MinerID: 2, Edge: 5, Cloud: 2}, // does not fit: rejected
		{MinerID: 3, Edge: 4, Cloud: 0}, // fits in the remainder
	}
	outs, sum, err := n.Serve(reqs, nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if outs[0].Kind != FullySatisfied || outs[1].Kind != Rejected || outs[2].Kind != FullySatisfied {
		t.Fatalf("kinds = %v %v %v", outs[0].Kind, outs[1].Kind, outs[2].Kind)
	}
	if outs[1].EdgeServed != 0 || outs[1].CloudServed != 2 {
		t.Errorf("rejected outcome = %+v, want degraded to [0, c]", outs[1])
	}
	if sum.EdgeServed != 10 || sum.Rejected != 1 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.EdgeDemand != 15 || sum.CloudDemand != 3 {
		t.Errorf("demand = %+v", sum)
	}
}

func TestServeNegativeUnits(t *testing.T) {
	n := standaloneNet()
	if _, _, err := n.Serve([]Request{{MinerID: 1, Edge: -1}}, nil); err == nil {
		t.Error("want error for negative request")
	}
}

func TestProfits(t *testing.T) {
	n := connectedNet()
	sum := ServiceSummary{EdgeDemand: 10, CloudDemand: 20}
	if got := n.ESPProfit(sum); got != (8-2)*10 {
		t.Errorf("ESPProfit = %g, want 60", got)
	}
	if got := n.CSPProfit(sum); got != (4-1)*20 {
		t.Errorf("CSPProfit = %g, want 60", got)
	}
}

func TestAllocationsAndRaceConfig(t *testing.T) {
	n := standaloneNet()
	outs, _, err := n.Serve([]Request{
		{MinerID: 1, Edge: 4, Cloud: 2},
		{MinerID: 2, Edge: 20, Cloud: 1}, // rejected: all cloud power is c only
	}, nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	cfg := n.RaceConfig(outs)
	if cfg.Interval != 600 || cfg.CloudDelay != 120 {
		t.Errorf("race config timing = %+v", cfg)
	}
	if len(cfg.Allocations) != 2 {
		t.Fatalf("allocations = %v", cfg.Allocations)
	}
	if cfg.Allocations[0] != (chain.Allocation{MinerID: 1, Edge: 4, Cloud: 2}) {
		t.Errorf("alloc[0] = %+v", cfg.Allocations[0])
	}
	if cfg.Allocations[1] != (chain.Allocation{MinerID: 2, Edge: 0, Cloud: 1}) {
		t.Errorf("alloc[1] = %+v", cfg.Allocations[1])
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("race config invalid: %v", err)
	}
}

func TestStringers(t *testing.T) {
	if Connected.String() != "connected" || Standalone.String() != "standalone" {
		t.Error("mode strings")
	}
	if Mode(7).String() != "mode(7)" {
		t.Error("unknown mode string")
	}
	if FullySatisfied.String() != "satisfied" || Transferred.String() != "transferred" || Rejected.String() != "rejected" {
		t.Error("outcome strings")
	}
	if OutcomeKind(9).String() != "outcome(9)" {
		t.Error("unknown outcome string")
	}
}

func TestServeBillServed(t *testing.T) {
	// Standalone rejection under served billing: the rejected edge part
	// is not charged.
	n := standaloneNet()
	n.Billing = BillServed
	outs, _, err := n.Serve([]Request{
		{MinerID: 1, Edge: 6, Cloud: 1},
		{MinerID: 2, Edge: 8, Cloud: 2}, // rejected: pays cloud only
	}, nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if outs[0].Billed != 8*6+4*1 {
		t.Errorf("satisfied bill = %g, want 52", outs[0].Billed)
	}
	if outs[1].Billed != 4*2 {
		t.Errorf("rejected bill = %g, want cloud-only 8", outs[1].Billed)
	}
	// Connected transfer under served billing: everything at cloud price.
	c := connectedNet()
	c.Billing = BillServed
	c.ESP.SatisfyProb = 0 // force the transfer deterministically... h=0 means always transfer
	outs, _, err = c.Serve([]Request{{MinerID: 1, Edge: 3, Cloud: 1}}, sim.NewRNG(1, "bill"))
	if err != nil {
		t.Fatalf("Serve connected: %v", err)
	}
	if outs[0].Kind != Transferred {
		t.Fatalf("kind = %v, want transferred at h=0", outs[0].Kind)
	}
	if outs[0].Billed != 4*4 {
		t.Errorf("transferred bill = %g, want all 4 units at cloud price 4", outs[0].Billed)
	}
}

func TestServeBillRequestedIsDefault(t *testing.T) {
	n := standaloneNet()
	outs, _, err := n.Serve([]Request{{MinerID: 1, Edge: 20, Cloud: 1}}, nil) // rejected
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if outs[0].Billed != 8*20+4*1 {
		t.Errorf("default billing must charge requested units: %g", outs[0].Billed)
	}
}
