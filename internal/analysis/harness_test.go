package analysis

// Fixture harness: an analysistest-style driver built on the stdlib.
// A fixture is a directory under testdata/ holding one package whose
// sources annotate expected findings with trailing comments:
//
//	return a == b // want "== on float operands"
//
// Each quoted string is a regexp matched against "check: message" of a
// diagnostic reported on that line. The harness fails the test on any
// unmatched want and on any unexpected diagnostic, so fixtures pin
// both that violations are reported and that allowed idioms (and
// //lint:allow directives) stay silent.

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE captures the quoted regexps of a `// want "..." "..."` comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// fixtureDiags loads testdata/<name> as one package, runs the given
// analyzers over it with directives applied, and returns the surviving
// diagnostics. directiveFindings toggles the pseudo-check "directive"
// (malformed/unknown/stale) findings.
func fixtureDiags(t *testing.T, name string, directiveFindings bool, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	dir := filepath.Join("testdata", name)
	pkg, err := mod.CheckDir(dir, mod.Path+"/internal/analysis/testdata/"+name)
	if err != nil {
		t.Fatalf("CheckDir(%s): %v", dir, err)
	}
	diags, err := runSuite(mod, []*Package{pkg}, analyzers, map[string][]string{}, !directiveFindings)
	if err != nil {
		t.Fatalf("runSuite(%s): %v", name, err)
	}
	sortDiagnostics(diags)
	return diags
}

// testFixture runs analyzers over testdata/<name> and diffs the
// findings against the fixture's // want annotations.
func testFixture(t *testing.T, name string, directiveFindings bool, analyzers ...*Analyzer) {
	t.Helper()
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags := fixtureDiags(t, name, directiveFindings, analyzers...)

	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := make(map[string]map[int][]*want) // file -> line -> expectations
	dir := filepath.Join("testdata", name)
	pkg, err := mod.CheckDir(dir, mod.Path+"/internal/analysis/testdata/"+name)
	if err != nil {
		t.Fatalf("CheckDir(%s): %v", dir, err)
	}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := mod.Fset.Position(c.Pos())
				fname := mod.Rel(pos.Filename)
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					pattern := strings.ReplaceAll(m[1], `\"`, `"`)
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", fname, pos.Line, pattern, err)
					}
					if wants[fname] == nil {
						wants[fname] = make(map[int][]*want)
					}
					wants[fname][pos.Line] = append(wants[fname][pos.Line], &want{re: re, raw: pattern})
				}
			}
		}
	}

	for _, d := range diags {
		text := d.Check + ": " + d.Message
		matched := false
		for _, w := range wants[d.File][d.Line] {
			if w.re.MatchString(text) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for fname, byLine := range wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want %q", fname, line, w.raw)
				}
			}
		}
	}
}
