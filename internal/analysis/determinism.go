package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// randConstructors are the math/rand (and v2) package-level functions
// that build an explicitly seeded generator rather than reading the
// shared global source; they are the only package-level rand calls the
// determinism check allows.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, // math/rand
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// timeForbidden are the time package functions that read the wall
// clock (or depend on real elapsed time) and therefore make solver
// output irreproducible.
var timeForbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
}

// Determinism returns the analyzer enforcing the repository's
// byte-identical reproducibility contract: solver and experiment code
// must not read the wall clock, must not draw from the global
// math/rand source (every RNG is an injected, explicitly seeded
// *rand.Rand), and must not emit output directly from a map iteration
// (Go randomizes map order per run).
func Determinism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc: "forbids wall-clock reads (time.Now/Since/...), global math/rand draws, " +
			"and output emitted from map-range iteration in solver/experiment packages",
		Run: runDeterminism,
	}
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, node)
			case *ast.RangeStmt:
				checkMapRange(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkDeterminismCall flags wall-clock reads and global-source
// math/rand draws.
func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn, (time.Time).Sub) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if timeForbidden[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to time.%s reads the wall clock; solver output must be reproducible — "+
					"inject timestamps or move telemetry behind internal/obs", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to %s.%s draws from the process-global random source; "+
					"inject an explicitly seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags `for ... := range m` over a map when the loop
// body emits output directly (fmt print family or Write* methods):
// map iteration order is randomized per run, so anything written in
// iteration order is nondeterministic. Collecting keys and sorting
// before output is the fix (and is not flagged).
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var emit ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if emit != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if emitsOutput(pass, call) {
			emit = call
			return false
		}
		return true
	})
	if emit != nil {
		pass.Reportf(emit.Pos(),
			"output emitted inside range over map: iteration order is randomized per run; "+
				"collect and sort keys first")
	}
}

// emitsOutput reports whether a call writes output whose order the
// caller would observe: the fmt Print/Fprint/Sprint/Append families,
// or any Write*-named method (io.Writer, strings.Builder, ...).
func emitsOutput(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return strings.HasPrefix(fn.Name(), "Write")
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		name := fn.Name()
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Sprint") || strings.HasPrefix(name, "Append")
	}
	return false
}

// calleeFunc resolves the function or method object a call invokes,
// or nil when the callee is not a named function (e.g. a func value).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}
