package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// randConstructors are the math/rand (and v2) package-level functions
// that build an explicitly seeded generator rather than reading the
// shared global source; they are the only package-level rand calls the
// determinism check allows.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, // math/rand
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// timeForbidden are the time package functions that read the wall
// clock (or depend on real elapsed time) and therefore make solver
// output irreproducible.
var timeForbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
}

// Determinism returns the analyzer enforcing the repository's
// byte-identical reproducibility contract: solver and experiment code
// must not read the wall clock, must not draw from the global
// math/rand source (every RNG is an injected, explicitly seeded
// *rand.Rand), and must not emit output directly from a map iteration
// (Go randomizes map order per run). The per-package half flags direct
// violations; the module half walks the call graph and flags any
// exported function from which an (un-allowed) violation is reachable,
// reporting the full call chain.
func Determinism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc: "forbids wall-clock reads (time.Now/Since/...), global math/rand draws, " +
			"and output emitted from map-range iteration in solver/experiment packages, " +
			"directly or transitively from any exported function",
		Run:       runDeterminism,
		RunModule: runDeterminismModule,
	}
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if msg := determinismCallViolation(pass.Info, node); msg != "" {
					pass.Reportf(node.Pos(), "%s", msg)
				}
			case *ast.RangeStmt:
				if emit := mapRangeEmit(pass.Info, node); emit != nil {
					pass.Reportf(emit.Pos(), "%s", mapRangeMessage)
				}
			}
			return true
		})
	}
	return nil
}

// mapRangeMessage is the shared diagnostic text for output emitted in
// map-iteration order.
const mapRangeMessage = "output emitted inside range over map: iteration order is randomized per run; " +
	"collect and sort keys first"

// determinismCallViolation returns the diagnostic message for a
// wall-clock read or global-source math/rand draw, or "" when the call
// is fine.
func determinismCallViolation(info *types.Info, call *ast.CallExpr) string {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "" // methods (e.g. (*rand.Rand).Intn, (time.Time).Sub) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if timeForbidden[fn.Name()] {
			return "call to time." + fn.Name() + " reads the wall clock; solver output must be " +
				"reproducible — inject timestamps or move telemetry behind internal/obs"
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return "call to " + fn.Pkg().Name() + "." + fn.Name() + " draws from the process-global " +
				"random source; inject an explicitly seeded *rand.Rand instead"
		}
	}
	return ""
}

// mapRangeEmit returns the first output-emitting call inside a
// `for ... := range m` over a map, or nil. Map iteration order is
// randomized per run, so anything written in iteration order is
// nondeterministic; collecting keys and sorting before output is the
// fix (and is not flagged).
func mapRangeEmit(info *types.Info, rng *ast.RangeStmt) ast.Node {
	t := info.TypeOf(rng.X)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return nil
	}
	var emit ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if emit != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if emitsOutput(info, call) {
			emit = call
			return false
		}
		return true
	})
	return emit
}

// emitsOutput reports whether a call writes output whose order the
// caller would observe: the fmt Print/Fprint/Sprint/Append families,
// or any Write*-named method (io.Writer, strings.Builder, ...).
func emitsOutput(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return strings.HasPrefix(fn.Name(), "Write")
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		name := fn.Name()
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Sprint") || strings.HasPrefix(name, "Append")
	}
	return false
}
