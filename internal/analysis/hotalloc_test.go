package analysis

import (
	"strings"
	"testing"
)

// TestHotAllocFixture diffs the hotalloc analyzer against its fixture:
// every direct allocation form inside hotpath loops, transitive chains
// up to the documented depth, and the silent shapes (hoisted
// allocations, funcvalue calls, beyond-depth chains, scoped
// directives).
func TestHotAllocFixture(t *testing.T) {
	testFixture(t, "hotalloc", false, HotAlloc())
}

// TestHotAllocDirectiveMisuse pins the misuse findings — unknown
// verbs, detached annotations, bodyless targets, duplicates — which
// are reported on the directive comment's own line and therefore
// cannot carry want annotations.
func TestHotAllocDirectiveMisuse(t *testing.T) {
	diags := fixtureDiags(t, "hotallocmisuse", false, HotAlloc())
	wants := []string{
		`unknown minelint directive "hotpth"`,
		"not attached to a function declaration",
		"annotates a function with no body",
		"duplicate //minelint:hotpath on doubled",
		// The doubly-annotated function is still checked.
		"append inside a loop of hotpath function hotallocmisuse.doubled",
	}
	for _, want := range wants {
		found := false
		for _, d := range diags {
			if d.Check == "hotalloc" && strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no hotalloc finding containing %q in %v", want, diags)
		}
	}
	if len(diags) != len(wants) {
		t.Errorf("got %d findings, want %d: %v", len(diags), len(wants), diags)
	}
}
