// Package nopanictrans exercises the transitive half of the nopanic
// check: exported functions that reach an undocumented panic through
// the call graph are flagged with the chain, while documented
// must-style helpers form a boundary chains do not cross.
package nopanictrans

// leaf blows up on bad input without declaring it.
func leaf(v int) int {
	if v < 0 {
		panic("negative") // want "nopanic: panic in library code"
	}
	return v
}

// Unchecked reaches the undocumented blow-up one hop down.
func Unchecked(v int) int {
	return leaf(v) // want "nopanic: nopanictrans.Unchecked transitively reaches an undocumented panic: nopanictrans.Unchecked → nopanictrans.leaf"
}

// mid relays to the leaf.
func mid(v int) int { return leaf(v) }

// Deep reaches the same blow-up two hops down; the chain names every
// intermediate function.
func Deep(v int) int {
	return mid(v) // want "nopanic: nopanictrans.Deep transitively reaches an undocumented panic: nopanictrans.Deep → nopanictrans.mid → nopanictrans.leaf"
}

// mustPositive returns v, panicking if v is negative: a documented
// invariant-violation helper. Its panic is not a sink and chains stop
// at it.
func mustPositive(v int) int {
	if v < 0 {
		panic("negative")
	}
	return v
}

// Checked reaches a blow-up only through the documented must-helper:
// the contract is declared, so there is no finding.
func Checked(v int) int {
	return mustPositive(v)
}
