// Package exporteddoc is a minelint fixture seeding doc-discipline
// violations: exported declarations without doc comments, next to
// documented ones the check accepts.
package exporteddoc

// Documented carries a doc comment.
func Documented() int { return 1 }

func Undocumented() int { return 2 } // want "exported func Undocumented lacks a doc comment"

type widget struct{}

func (widget) Render() int { return 3 } // want "exported func Render lacks a doc comment"

// render is unexported: no doc required.
func (widget) render() int { return 4 }

// Widget is a documented exported type.
type Widget struct{}

// Limit is a documented exported constant.
const Limit = 10

func Allowed() int { return 5 } //lint:allow exporteddoc fixture: explicitly waived
