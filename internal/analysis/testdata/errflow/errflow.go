// Package errflow is a minelint fixture seeding error-flow
// violations — discarded results, unchecked calls, and overwritten err
// variables — next to the idioms the check accepts (fmt and builder
// exemptions, deferred cleanup, reads between assignments, and scoped
// //lint:allow directives).
package errflow

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

// fail always errors, giving the fixture an in-package error source.
func fail() error { return errors.New("boom") }

// failPair returns a value-and-error pair.
func failPair() (int, error) { return 0, errors.New("boom") }

// Discarded blanks error results in every shape the check flags.
func Discarded() int {
	_ = fail()         // want "errflow: error result of errflow.fail discarded with _"
	v, _ := failPair() // want "errflow: error result of errflow.failPair discarded with _"
	_, _ = 1, fail()   // want "errflow: error result of errflow.fail discarded with _"
	return v
}

// Unchecked drops an error without even a blank.
func Unchecked() {
	fail() // want "errflow: errflow.fail returns an error that is never checked"
}

// Overwritten assigns err twice with no read in between: the first
// error is unconditionally lost.
func Overwritten() error {
	_, err := failPair() // want "errflow: error assigned to err is overwritten on line \d+ before it is read"
	_, err = failPair()
	return err
}

// ReadBetween inspects the first error before reusing the variable:
// no finding.
func ReadBetween() error {
	_, err := failPair()
	if err != nil {
		return err
	}
	_, err = failPair()
	return err
}

// BranchReset assigns inside nested control flow, which conservatively
// resets tracking: no finding.
func BranchReset(flip bool) error {
	err := fail()
	if flip {
		return nil
	}
	err = fail()
	return err
}

// Exempt uses the never-failing writers and deferred cleanup the check
// leaves alone.
func Exempt() string {
	var b strings.Builder
	b.WriteString("hello")
	var buf bytes.Buffer
	buf.WriteByte('!')
	fmt.Println("hello")
	f, err := os.Open(os.DevNull)
	if err != nil {
		return ""
	}
	defer f.Close()
	return b.String() + buf.String()
}

// Allowed discards under a scoped directive with a rationale.
func Allowed() {
	_ = fail() //lint:allow errflow fixture: explicitly waived
}
