// Package floateq is a minelint fixture seeding float-comparison
// violations next to every exempt idiom: zero-constant sentinels,
// math.Inf sentinels, the x != x NaN probe, named epsilon helpers,
// integer comparisons, and a scoped //lint:allow directive.
package floateq

import "math"

// Same compares floats exactly.
func Same(a, b float64) bool {
	return a == b // want "== on float operands"
}

// Different compares floats exactly.
func Different(a, b float64) bool {
	return a != b // want "!= on float operands"
}

// Single flags float32 too.
func Single(a, b float32) bool {
	return a == b // want "== on float operands"
}

// Halfway flags mixed constant comparisons: 0.5 is not the zero
// sentinel.
func Halfway(x float64) bool {
	return x == 0.5 // want "== on float operands"
}

// IsZero compares against the exact zero constant: allowed.
func IsZero(x float64) bool {
	return x == 0
}

// NonZero compares against zero on the left: allowed.
func NonZero(x float64) bool {
	return 0 != x
}

// IsNaN is the self-comparison NaN probe: allowed.
func IsNaN(x float64) bool {
	return x != x
}

// Infeasible compares against the math.Inf sentinel: allowed.
func Infeasible(p float64) bool {
	return p == math.Inf(-1)
}

// almostEqualAbs is a named epsilon helper; its exact fast path is the
// helper's job and is exempt.
func almostEqualAbs(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

// Ints compares integers, which is not a float comparison: allowed.
func Ints(a, b int) bool {
	return a == b
}

// Close delegates to the helper: allowed.
func Close(a, b float64) bool {
	return almostEqualAbs(a, b, 1e-9)
}

// Allowed compares exactly under a scoped directive.
func Allowed(a, b float64) bool {
	return a == b //lint:allow floateq fixture: explicitly waived
}
