// Package concurrency is a minelint fixture seeding concurrency
// ownership outside the approved packages: go statements, raw channel
// construction, and sync primitive ownership, next to the accepted
// forms (using a lock someone else owns, and scoped //lint:allow
// directives).
package concurrency

import "sync"

// Spawn fans out by hand instead of riding internal/parallel.
func Spawn(fns []func()) {
	for _, fn := range fns {
		go fn() // want "concurrency: go statement outside the approved concurrency packages"
	}
}

// Channels builds raw channel plumbing.
func Channels() chan int {
	done := make(chan struct{}, 1) // want "concurrency: raw channel constructed outside the approved concurrency packages"
	close(done)
	return make(chan int) // want "concurrency: raw channel constructed outside the approved concurrency packages"
}

// owner declares a mutex field: primitive ownership.
type owner struct {
	mu sync.Mutex // want "concurrency: sync.Mutex primitive owned outside the approved concurrency packages"
	n  int
}

// Bump calls a sync package-level constructor.
func Bump(o *owner) func() {
	return sync.OnceFunc(func() { o.n++ }) // want "concurrency: call to sync.OnceFunc outside the approved concurrency packages"
}

// locker is the subset of sync.Locker the fixture needs, declared
// locally so that using a lock someone else owns involves no sync
// reference of its own.
type locker interface {
	Lock()
	Unlock()
}

// WithLock locks a mutex it does not own: method calls are use, not
// ownership, and are not flagged.
func WithLock(mu locker, fn func()) {
	mu.Lock()
	defer mu.Unlock()
	fn()
}

// allowedOnce owns a primitive under a recorded rationale.
var allowedOnce sync.Once //lint:allow concurrency fixture: explicitly waived
