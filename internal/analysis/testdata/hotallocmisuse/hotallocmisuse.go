// Package hotallocmisuse seeds every misuse of the //minelint:
// directive family: unknown verbs, annotations not attached to a
// function, annotations on bodyless declarations, and duplicates.
// Findings land on the directive comment's own line, so the companion
// test asserts them positionally instead of with want comments.
package hotallocmisuse

//minelint:hotpth

// floating is below the misplaced directive; the typo'd verb above is
// an unknown-directive finding and, being detached, would also not
// anchor to any function.

//minelint:hotpath
var notAFunc int

// external has no body (an assembly-style declaration), which hotpath
// cannot police statically.
//
//minelint:hotpath
func external(n int) int

// doubled carries the annotation twice.
//
//minelint:hotpath
//minelint:hotpath
func doubled(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

var _ = notAFunc
var _ = doubled
