// Package stale is a minelint fixture seeding directive-hygiene
// violations for the driver's pseudo-check "directive": a stale allow
// that suppresses nothing, an allow naming an unknown check, and a
// malformed allow with no reason.
package stale

// Orphan carries an allow that suppresses nothing: the comparison is
// between integers, so floateq never fires here.
func Orphan(a, b int) bool {
	return a == b //lint:allow floateq ints compare exactly; nothing here to suppress
}

// Unknown names a check that does not exist in the suite.
func Unknown() int {
	return 4 //lint:allow bogus no such check in the suite
}

// MissingReason omits the mandatory reason.
func MissingReason() int {
	return 5 //lint:allow floateq
}

// Valid carries a live directive that must not be reported.
func Valid(a, b float64) bool {
	return a == b //lint:allow floateq fixture: genuinely suppressing the finding on this line
}
