// Package callgraph is a minelint fixture exercising the transitive
// half of the determinism check over every call-graph edge kind:
// static cross-package calls, interface dispatch fan-out, method
// values (funcvalue reference edges), and recursion cycles. The
// expected findings pin both the reporting position (the root's
// outgoing call site) and the rendered chain.
package callgraph

import (
	"time"

	"minegame/internal/analysis/testdata/callgraph/sub"
)

// Entry reaches the wall clock through a static cross-package edge.
func Entry() time.Time {
	return sub.Leaf() // want "determinism: callgraph.Entry transitively reaches time.Now: callgraph.Entry → sub.Leaf"
}

// CleanEntry only reaches determinism-safe code: no finding.
func CleanEntry() int {
	return sub.Clean()
}

// Ticker is the fixture's dispatch interface; RunTicker's call fans
// out to every implementation below.
type Ticker interface {
	Tick() int
}

// clockTicker reads the wall clock: the dirty implementation.
type clockTicker struct{}

func (clockTicker) Tick() int {
	return time.Now().Nanosecond() // want "determinism: call to time.Now reads the wall clock"
}

// pureTicker is the clean implementation.
type pureTicker struct{ n int }

func (p pureTicker) Tick() int { return p.n }

// RunTicker dispatches through the interface: the fan-out includes
// clockTicker, so the sink is reachable.
func RunTicker(t Ticker) int {
	return t.Tick() // want "determinism: callgraph.RunTicker transitively reaches time.Now: callgraph.RunTicker → \(callgraph.clockTicker\).Tick"
}

// MethodValue takes a dirty method as a value: the reference edge is
// charged where the value is taken, not where it is finally invoked.
func MethodValue() int {
	f := clockTicker{}.Tick // want "determinism: callgraph.MethodValue transitively reaches time.Now: callgraph.MethodValue → \(callgraph.clockTicker\).Tick"
	return f()
}

// cycleLeaf is a direct sink reached from inside a recursion cycle.
func cycleLeaf() int {
	return time.Now().Second() // want "determinism: call to time.Now reads the wall clock"
}

// Recurse calls itself: the reverse traversal must terminate on the
// self-edge and still flag the path to the leaf.
func Recurse(n int) int {
	if n <= 0 {
		return 0
	}
	Recurse(n - 1)
	return cycleLeaf() // want "determinism: callgraph.Recurse transitively reaches time.Now: callgraph.Recurse → callgraph.cycleLeaf"
}

// pingA and pingB form a two-function cycle on the way to the sink.
func pingA(n int) int {
	if n <= 0 {
		return int(sub.Leaf().Unix())
	}
	return pingB(n - 1)
}

func pingB(n int) int { return pingA(n - 1) }

// Cycle enters the mutual recursion: the shortest chain threads the
// cycle once and ends at the cross-package sink.
func Cycle(n int) int {
	return pingA(n) // want "determinism: callgraph.Cycle transitively reaches time.Now: callgraph.Cycle → callgraph.pingA → sub.Leaf"
}

// allowedLeaf reads the clock under a recorded rationale: the directive
// at the sink line neutralizes it for the whole module.
func allowedLeaf() time.Time {
	return time.Now() //lint:allow determinism fixture: sink waived with a recorded rationale
}

// AllowedPath only reaches the waived sink: no finding anywhere on the
// chain.
func AllowedPath() time.Time {
	return allowedLeaf()
}
