// Package sub provides the cross-package leaves of the callgraph
// fixture: the determinism sinks live here, one package boundary away
// from the exported roots the transitive check must flag.
package sub

import "time"

// Leaf reads the wall clock. It is a sink; the direct finding is not
// reported here (only the enclosing fixture package is analyzed), but
// chains from the fixture package must cross into it.
func Leaf() time.Time {
	return time.Now()
}

// Clean is a determinism-safe leaf for control paths.
func Clean() int { return 42 }
