// Package nopanic is a minelint fixture seeding error-discipline
// violations: undocumented panics in library code, next to the two
// forms the check accepts (documented invariant-violation helpers and
// a scoped //lint:allow directive).
package nopanic

import "errors"

// Reciprocal blows up on negative input without documenting it, which
// the check must flag.
func Reciprocal(x float64) float64 {
	if x < 0 {
		panic("negative") // want "panic in library code"
	}
	return 1 / x
}

// Deep blows up inside a nested closure, which is still undocumented
// library code.
func Deep(xs []int) func() int {
	return func() int {
		if len(xs) == 0 {
			panic("empty") // want "panic in library code"
		}
		return xs[0]
	}
}

// mustPositive returns n, panicking if n is not positive: a documented
// invariant-violation helper, which the check accepts.
func mustPositive(n int) int {
	if n <= 0 {
		panic("n must be positive")
	}
	return n
}

// Checked returns an error like a well-behaved library function.
func Checked(n int) (int, error) {
	if n <= 0 {
		return 0, errors.New("n must be positive")
	}
	return mustPositive(n), nil
}

// Allowed panics under a scoped directive.
func Allowed() {
	panic("unreachable") //lint:allow nopanic fixture: explicitly waived
}
