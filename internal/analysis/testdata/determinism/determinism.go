// Package determinism is a minelint fixture seeding determinism
// violations (wall-clock reads, global math/rand draws, map-order
// output) next to the idioms the check must keep accepting (seeded
// constructors, injected generators, collect-and-sort emission).
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want "call to time\.Now reads the wall clock"
}

// Elapsed measures real elapsed time.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "call to time\.Since reads the wall clock"
}

// Draw uses the process-global random source.
func Draw() int {
	return rand.Intn(6) // want "draws from the process-global random source"
}

// Shuffled permutes via the global source.
func Shuffled(n int) []int {
	return rand.Perm(n) // want "draws from the process-global random source"
}

// TimeSeeded builds a generator seeded from the wall clock; the
// constructor is fine but the seed expression is not.
func TimeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "call to time\.Now reads the wall clock"
}

// Seeded builds an explicitly seeded generator: allowed.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// UsesInjected draws from an injected generator: methods are allowed.
func UsesInjected(r *rand.Rand) int {
	return r.Intn(6)
}

// PrintAll emits output in map-iteration order.
func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "output emitted inside range over map"
	}
}

// RenderAll formats entries in map-iteration order.
func RenderAll(m map[string]int) string {
	out := ""
	for k := range m {
		out += fmt.Sprintf("%s;", k) // want "output emitted inside range over map"
	}
	return out
}

// SortedKeys collects then sorts before any output: allowed.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Allowed reads the wall clock under a scoped directive.
func Allowed() int64 {
	return time.Now().UnixNano() //lint:allow determinism fixture: telemetry-style read, explicitly waived
}
