// Package metricname is a minelint fixture seeding metric-name
// convention violations (bare names, counters without _total,
// histograms without units, illegal characters) next to compliant
// names and the dynamic-name idioms the check must keep accepting.
package metricname

import "minegame/internal/obs"

// Compliant names: every recording method, nothing reported.
func Compliant(o *obs.Observer) {
	o.Count("core.demand_probes_total", 1)
	_ = o.Counter("miner.kkt_warm_hits_total")
	o.SetGauge("chain.height", 10)
	o.MaxGauge("parallel.pool_size", 4)
	_ = o.Gauge("rl.epsilon")
	o.Observe("game.sweep_delta", 0.5)
	_ = o.Histogram("parallel.task_ms")
	o.Observe("verify.epsilon_rel", 1e-6)
	o.Observe("chain.round_duration_s", 12)
	o.Emit("game.sweep", nil)
	sp := o.StartSpan("core.stackelberg", nil)
	child := sp.Child("game.solve_ne", nil)
	child.End(nil)
	sp.End(nil)
}

// BadShape seeds names outside the subsystem.name pattern.
func BadShape(o *obs.Observer) {
	o.Count("sweeps_total", 1)            // want "does not match the subsystem\.name_unit convention"
	o.SetGauge("Game.Height", 1)          // want "does not match the subsystem\.name_unit convention"
	o.Emit("game.solve-ne", nil)          // want "does not match the subsystem\.name_unit convention"
	_ = o.StartSpan("_private.name", nil) // want "does not match the subsystem\.name_unit convention"
}

// BadCounter seeds counters missing the _total suffix.
func BadCounter(o *obs.Observer) {
	o.Count("game.sweeps", 1)    // want "counter name \"game\.sweeps\" must end in _total"
	_ = o.Counter("chain.forks") // want "counter name \"chain\.forks\" must end in _total"
}

// BadHistogram seeds histograms without a recognized unit.
func BadHistogram(o *obs.Observer) {
	o.Observe("game.sweep", 0.5)          // want "histogram name \"game\.sweep\" must end in a unit"
	_ = o.Histogram("parallel.task_time") // want "histogram name \"parallel\.task_time\" must end in a unit"
}

// Dynamic names are out of scope: the convention is enforced where the
// name is a literal.
func Dynamic(o *obs.Observer, id string) {
	o.Count("experiments."+id, 1)
	o.Observe(spanName(id)+".ms", 1)
}

func spanName(id string) string { return "experiments." + id }

// Allowed suppresses a finding with a scoped directive.
func Allowed(o *obs.Observer) {
	o.Count("legacy.sweeps", 1) //lint:allow metricname migration shim: external dashboards still scrape the unsuffixed name
}
