// Package directives is a minelint fixture exercising the //lint:allow
// machinery: a directive suppresses exactly one check on exactly one
// line, whether trailing the offending line or standing alone directly
// above it.
package directives

// Trailing suppresses a finding on its own line.
func Trailing(a, b float64) bool {
	return a == b //lint:allow floateq fixture: trailing directive
}

// Standalone suppresses a finding on the next line.
func Standalone(a, b float64) bool {
	//lint:allow floateq fixture: standalone directive covers the line below
	return a == b
}

// OneLineOnly shows the directive covers exactly one line: the second
// comparison is still flagged.
func OneLineOnly(a, b float64) bool {
	if a == b { //lint:allow floateq fixture: first comparison only
		return true
	}
	return a != b // want "!= on float operands"
}

// OneCheckOnly shows a directive for a different check suppresses
// nothing here: the comparison is still flagged.
func OneCheckOnly(a, b float64) bool {
	//lint:allow nopanic fixture: names the wrong check for the line below
	return a == b // want "== on float operands"
}

// Gap shows a standalone directive does not reach past the next line.
func Gap(a, b float64) bool {
	//lint:allow floateq fixture: covers only the blank line below

	return a == b // want "== on float operands"
}
