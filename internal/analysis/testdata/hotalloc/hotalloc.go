// Package hotalloc is a minelint fixture for the hot-path allocation
// check: //minelint:hotpath-annotated functions must not allocate
// inside loops, directly or through static/interface callees up to the
// documented depth. Allocations outside loops, calls through function
// values, chains beyond the depth limit, and scoped //lint:allow
// directives stay silent.
package hotalloc

// Sweep is the annotated kernel with every direct allocation form in
// its loop, plus the accepted shapes.
//
//minelint:hotpath
func Sweep(xs []int) []int {
	// Allocating up front is the sanctioned pattern.
	out := make([]int, 0, len(xs))
	scale := func(v int) int { return 2 * v }
	for _, x := range xs {
		out = append(out, scale(x))  // want "hotalloc: append inside a loop of hotpath function hotalloc.Sweep"
		buf := make([]int, 4)        // want "hotalloc: make inside a loop of hotpath function hotalloc.Sweep"
		m := map[int]int{x: x}       // want "hotalloc: map literal inside a loop of hotpath function hotalloc.Sweep"
		f := func() int { return x } // want "hotalloc: closure inside a loop of hotpath function hotalloc.Sweep"
		_ = buf
		_ = m
		_ = f
	}
	return out
}

// grow allocates: a callee the transitive rule must see.
func grow(xs []int) []int {
	return append(xs, 0)
}

// relay sits one hop above grow.
func relay(xs []int) []int { return grow(xs) }

// relay2 sits two hops above grow.
func relay2(xs []int) []int { return relay(xs) }

// relay3 sits three hops above grow: one edge past the documented
// depth, so chains through it are not examined.
func relay3(xs []int) []int { return relay2(xs) }

// Transitive calls allocating callees from its loop at one, two, and
// three edges of depth; the fourth hop is past the limit and relies on
// the dynamic budget benchmarks instead.
//
//minelint:hotpath
func Transitive(xs []int) []int {
	var out []int
	for range xs {
		out = grow(out)   // want "hotalloc: call inside a loop of hotpath function hotalloc.Transitive allocates \(append\): hotalloc.Transitive → hotalloc.grow"
		out = relay(out)  // want "hotalloc: call inside a loop of hotpath function hotalloc.Transitive allocates \(append\): hotalloc.Transitive → hotalloc.relay → hotalloc.grow"
		out = relay2(out) // want "hotalloc: call inside a loop of hotpath function hotalloc.Transitive allocates \(append\): hotalloc.Transitive → hotalloc.relay2 → hotalloc.relay → hotalloc.grow"
		out = relay3(out) // past hotallocDepth: not flagged
	}
	return out
}

// sizer is the dispatch interface for the interface-edge case.
type sizer interface {
	size(n int) []int
}

// slabSizer allocates in its implementation.
type slabSizer struct{}

func (slabSizer) size(n int) []int { return make([]int, n) }

// Dispatch calls through the interface from its loop: the fan-out
// reaches the allocating implementation.
//
//minelint:hotpath
func Dispatch(s sizer, xs []int) int {
	total := 0
	for _, x := range xs {
		total += len(s.size(x)) // want "hotalloc: call inside a loop of hotpath function hotalloc.Dispatch allocates \(make\): hotalloc.Dispatch → \(hotalloc.slabSizer\).size"
	}
	return total
}

// FuncValue calls through a function value: the graph's funcvalue
// edges are reference edges, not call sites, so the loop call is not
// followed (the allocation budget benchmarks are the backstop).
//
//minelint:hotpath
func FuncValue(f func(int) []int, xs []int) int {
	total := 0
	for _, x := range xs {
		total += len(f(x))
	}
	return total
}

// Hoisted allocates only outside its loop: no finding.
//
//minelint:hotpath
func Hoisted(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = out[:len(out):cap(out)]
		if len(out) < cap(out) {
			out = out[:len(out)+1]
			out[len(out)-1] = x
		}
	}
	return out
}

// Allowed allocates in its loop under a recorded rationale.
//
//minelint:hotpath
func Allowed(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) //lint:allow hotalloc fixture: explicitly waived
	}
	return out
}
