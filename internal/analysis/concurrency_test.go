package analysis

import "testing"

// TestConcurrencyFixture diffs the concurrency analyzer against its
// fixture: go statements, raw channel construction, and sync primitive
// ownership are flagged; using a lock someone else owns and scoped
// directives stay silent.
func TestConcurrencyFixture(t *testing.T) {
	testFixture(t, "concurrency", false, Concurrency())
}
