package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// obsPkgSuffix identifies the instrumentation package whose recording
// methods take metric names. Matching by suffix keeps the check
// portable across module renames (and lets the fixture package declare
// its own stand-in obs package).
const obsPkgSuffix = "internal/obs"

// metricNameMethods maps each obs recording method to the kind of
// series its literal name argument creates.
var metricNameMethods = map[string]string{
	"Counter":   "counter",
	"Count":     "counter",
	"Gauge":     "gauge",
	"SetGauge":  "gauge",
	"MaxGauge":  "gauge",
	"Histogram": "histogram",
	"Observe":   "histogram",
	"StartSpan": "span",
	"Emit":      "event",
	"Child":     "span",
}

// metricNamePattern is the repository convention for every series name:
// lower-case dot-separated segments, at least subsystem.name, with
// underscores allowed past the first segment.
var metricNamePattern = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z][a-z0-9_]*)+$`)

// histUnits is the unit vocabulary a histogram name must end with
// (after "_" or "."): duration, size, iteration-count, and the solver's
// dimensionless residual/quality units.
var histUnits = []string{
	"ms", "s", "seconds", "bytes", "iterations",
	"rate", "ratio", "rel", "distance", "delta", "reward",
}

// MetricName returns the analyzer enforcing the subsystem.name_unit
// metric-name convention on literal names passed to the obs recording
// methods: every name matches metricNamePattern (dots become
// underscores at exposition, yielding Prometheus's subsystem_name_unit
// shape), counter names end in _total, and histogram names end in a
// unit from histUnits. Dynamically built names (string concatenation,
// variables) are skipped — the convention is enforced where the name is
// spelled out.
func MetricName() *Analyzer {
	return &Analyzer{
		Name: "metricname",
		Doc: "enforces the subsystem.name_unit convention on literal metric names: " +
			"dot-separated lower-case segments, counters ending _total, histograms ending in a known unit",
		Run: runMetricName,
	}
}

func runMetricName(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			kind, ok := metricKind(pass, call)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind.String() != "STRING" {
				return true // dynamic name; out of scope
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if msg := checkMetricName(name, kind); msg != "" {
				pass.Reportf(lit.Pos(), "%s", msg)
			}
			return true
		})
	}
	return nil
}

// metricKind resolves a call to an obs recording method and returns the
// series kind its name argument creates.
func metricKind(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeOf(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	if path != obsPkgSuffix && !strings.HasSuffix(path, "/"+obsPkgSuffix) {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	kind, ok := metricNameMethods[fn.Name()]
	return kind, ok
}

// checkMetricName validates one literal series name against the
// convention for its kind; it returns the diagnostic message, or ""
// when the name complies.
func checkMetricName(name, kind string) string {
	if !metricNamePattern.MatchString(name) {
		return "metric name " + strconv.Quote(name) +
			" does not match the subsystem.name_unit convention (" + metricNamePattern.String() + ")"
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			return "counter name " + strconv.Quote(name) + " must end in _total"
		}
	case "histogram":
		if !hasUnitSuffix(name) {
			return "histogram name " + strconv.Quote(name) +
				" must end in a unit (_" + strings.Join(histUnits, ", _") + ")"
		}
	}
	return ""
}

// hasUnitSuffix reports whether a histogram name ends in one of the
// vocabulary units, attached with "_" or as its own ".unit" segment.
func hasUnitSuffix(name string) bool {
	for _, u := range histUnits {
		if strings.HasSuffix(name, "_"+u) || strings.HasSuffix(name, "."+u) {
			return true
		}
	}
	return false
}
