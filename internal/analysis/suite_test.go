package analysis

import (
	"strings"
	"testing"
)

// TestRandDisciplineAudit is the chain/rl/netmodel/experiments RNG
// audit, kept as a standing gate: every generator in the stochastic
// layers must be an injected, explicitly seeded *rand.Rand (or derived
// from a config seed, as in experiments/substrate.go), so the
// determinism analyzer must come back empty over them.
func TestRandDisciplineAudit(t *testing.T) {
	diags, err := Run(RunConfig{
		Dir: "../..",
		Patterns: []string{
			"internal/chain", "internal/rl", "internal/netmodel", "internal/experiments",
		},
		Analyzers:           []*Analyzer{Determinism()},
		NoDirectiveFindings: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("stochastic layer uses an unseeded/global source: %s", d)
	}
}

func TestDefaultSuiteCheckNames(t *testing.T) {
	want := []string{
		"determinism", "nopanic", "floateq", "exporteddoc", "metricname",
		"errflow", "concurrency", "hotalloc",
	}
	suite := DefaultSuite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
	skips := DefaultPackageSkips()
	for check := range skips {
		found := false
		for _, a := range suite {
			if a.Name == check {
				found = true
			}
		}
		if !found {
			t.Errorf("PackageSkips names unknown check %q", check)
		}
	}
}

func TestSkippedPrefixSemantics(t *testing.T) {
	prefixes := []string{"internal/obs"}
	for rel, want := range map[string]bool{
		"internal/obs":         true,
		"internal/obs/obscli":  true,
		"internal/observatory": false,
		"internal/core":        false,
		"":                     false,
	} {
		if got := skipped(prefixes, rel); got != want {
			t.Errorf("skipped(%q) = %v, want %v", rel, got, want)
		}
	}
}

// TestExpandSkipsFixtures pins that pattern expansion never descends
// into testdata (where this package's seeded violations live), hidden
// directories, or results.
func TestExpandSkipsFixtures(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	paths, err := mod.Expand("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("Expand found no packages")
	}
	seenSelf := false
	for _, p := range paths {
		if p == mod.Path+"/internal/analysis" {
			seenSelf = true
		}
		for _, frag := range []string{"/testdata/", "/results/"} {
			if strings.Contains(p, frag) {
				t.Errorf("Expand leaked fixture package %s", p)
			}
		}
	}
	if !seenSelf {
		t.Errorf("Expand missed internal/analysis itself: %v", paths)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "a/b.go", Line: 3, Col: 7, Check: "floateq", Message: "boom"}
	if got, want := d.String(), "a/b.go:3:7: floateq: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
