package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotallocDepth is how many call edges deep the hotalloc check follows
// a loop-contained call looking for allocations. Beyond this
// (documented) depth chains are not examined — the dynamic
// allocation-budget benchmarks remain the backstop.
const hotallocDepth = 3

// HotAlloc returns the analyzer protecting the solver hot paths'
// allocation budget. Functions annotated `//minelint:hotpath` (in
// their doc comment group) must not allocate inside loops: no append,
// no make, no map literals, no closures. The rule is transitive —
// a loop-contained call whose (static or interface-resolved) callee
// allocates anywhere, up to hotallocDepth call edges deep, is flagged
// with the full chain. Calls through function values are not followed
// (the graph's funcvalue edges are reference edges, not call sites);
// the ≤8-allocs budget tests are the dynamic backstop for those.
// Packages on the check's skip list (obs, parallel) are a trust
// boundary whose disabled-mode cost is pinned by benchmarks.
func HotAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc: "forbids append/make/map-literal/closure allocations inside loops of " +
			"//minelint:hotpath-annotated functions, transitively through static and " +
			"interface calls to a documented depth",
		RunModule: runHotAlloc,
	}
}

func runHotAlloc(mp *ModulePass) error {
	targets := collectHotpathTargets(mp)
	summaries := make(map[*types.Func]*allocSummary)
	for _, fn := range targets {
		checkHotFunction(mp, fn, summaries)
	}
	return nil
}

// collectHotpathTargets scans the analyzed packages for //minelint:
// annotations, reporting misuse (unknown verbs, duplicates,
// annotations not attached to a function declaration) and returning
// the annotated functions in deterministic graph order.
func collectHotpathTargets(mp *ModulePass) []*types.Func {
	annotated := make(map[*types.Func]bool)
	for _, pkg := range mp.Analyzed {
		for _, file := range pkg.Files {
			// Attachment map: which comment groups are function docs.
			funcDocs := make(map[*ast.CommentGroup]*ast.FuncDecl)
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
					funcDocs[fd.Doc] = fd
				}
			}
			for _, group := range file.Comments {
				fd := funcDocs[group]
				seen := false
				for _, c := range group.List {
					verb, _, ok := parseMinelintDirective(c.Text)
					if !ok {
						continue
					}
					switch {
					case verb != "hotpath":
						mp.Reportf(c.Pos(), nil,
							"unknown minelint directive %q (supported: //minelint:hotpath)", verb)
					case fd == nil:
						mp.Reportf(c.Pos(), nil,
							"//minelint:hotpath is not attached to a function declaration; "+
								"put it in the function's doc comment group")
					case fd.Body == nil:
						mp.Reportf(c.Pos(), nil,
							"//minelint:hotpath annotates a function with no body")
					case seen:
						mp.Reportf(c.Pos(), nil,
							"duplicate //minelint:hotpath on %s; delete the extra annotation", fd.Name.Name)
					default:
						seen = true
						if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
							annotated[fn] = true
						}
					}
				}
			}
		}
	}
	var targets []*types.Func
	for _, fn := range mp.Graph.Functions() {
		if annotated[fn] {
			targets = append(targets, fn)
		}
	}
	return targets
}

// checkHotFunction inspects one annotated function: direct allocations
// inside its loops, and loop-contained calls whose callees allocate
// within hotallocDepth edges.
func checkHotFunction(mp *ModulePass, hot *types.Func, summaries map[*types.Func]*allocSummary) {
	fd := mp.Graph.Decl(hot)
	pkg := mp.Graph.PkgOf(hot)
	name := FuncDisplayName(hot)
	edgesAt := make(map[token.Pos][]CallEdge)
	for _, e := range mp.Graph.CalleesOf(hot) {
		if e.Kind != EdgeFuncValue {
			edgesAt[e.Pos] = append(edgesAt[e.Pos], e)
		}
	}
	var inLoop func(n ast.Node)
	inLoop = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if kind, pos, ok := allocNodeKind(pkg.Info, n); ok {
				mp.Reportf(pos, nil,
					"%s inside a loop of hotpath function %s; hoist it out of the loop "+
						"(the solve allocation budget is pinned by benchmarks)", kind, name)
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false // the closure is the finding; don't re-flag its innards
				}
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, e := range edgesAt[call.Pos()] {
				if mp.Skipped(mp.Graph.PkgOf(e.Callee)) {
					continue
				}
				chain, alloc := allocChain(mp, e.Callee, hotallocDepth-1, summaries,
					map[*types.Func]bool{hot: true})
				if chain != nil {
					full := append([]Frame{mp.FrameAt(hot, e.Pos, e.Kind)}, chain...)
					mp.Reportf(call.Pos(), full,
						"call inside a loop of hotpath function %s allocates (%s): %s; "+
							"hoist the work out of the loop or allocate up front",
						name, alloc.kind, chainString(full))
					break
				}
			}
			return true
		})
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.ForStmt:
			if loop.Post != nil {
				inLoop(loop.Post)
			}
			inLoop(loop.Body)
			return false
		case *ast.RangeStmt:
			inLoop(loop.Body)
			return false
		}
		return true
	})
}

// allocSummary caches one function's first direct allocation site.
type allocSummary struct {
	computed bool
	kind     string
	pos      token.Pos
}

// directAlloc returns the earliest direct allocation anywhere in fn's
// body (loops or not — a callee invoked per iteration allocates per
// iteration), memoized.
func directAlloc(mp *ModulePass, fn *types.Func, summaries map[*types.Func]*allocSummary) *allocSummary {
	if s, ok := summaries[fn]; ok {
		return s
	}
	s := &allocSummary{}
	summaries[fn] = s
	pkg := mp.Graph.PkgOf(fn)
	ast.Inspect(mp.Graph.Decl(fn), func(n ast.Node) bool {
		if s.computed {
			return false
		}
		if kind, pos, ok := allocNodeKind(pkg.Info, n); ok {
			s.computed, s.kind, s.pos = true, kind, pos
			return false
		}
		return true
	})
	return s
}

// allocChain searches fn (and its static/interface callees, up to
// depth further edges) for an allocation, returning the chain of
// frames from fn down to the allocation site, or nil.
func allocChain(mp *ModulePass, fn *types.Func, depth int,
	summaries map[*types.Func]*allocSummary, visited map[*types.Func]bool) ([]Frame, *allocSummary) {

	if visited[fn] || mp.Graph.Decl(fn) == nil || mp.Skipped(mp.Graph.PkgOf(fn)) {
		return nil, nil
	}
	visited[fn] = true
	defer delete(visited, fn)
	if s := directAlloc(mp, fn, summaries); s.computed {
		return []Frame{mp.FrameAt(fn, s.pos, "")}, s
	}
	if depth == 0 {
		return nil, nil
	}
	for _, e := range mp.Graph.CalleesOf(fn) {
		if e.Kind == EdgeFuncValue {
			continue
		}
		sub, alloc := allocChain(mp, e.Callee, depth-1, summaries, visited)
		if sub != nil {
			return append([]Frame{mp.FrameAt(fn, e.Pos, e.Kind)}, sub...), alloc
		}
	}
	return nil, nil
}

// allocNodeKind classifies the four allocation forms hotalloc polices.
func allocNodeKind(info *types.Info, n ast.Node) (kind string, pos token.Pos, ok bool) {
	switch node := n.(type) {
	case *ast.CallExpr:
		id, isIdent := ast.Unparen(node.Fun).(*ast.Ident)
		if !isIdent {
			return "", token.NoPos, false
		}
		if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
			return "", token.NoPos, false
		}
		switch id.Name {
		case "append":
			return "append", node.Pos(), true
		case "make":
			return "make", node.Pos(), true
		}
	case *ast.CompositeLit:
		if t := info.TypeOf(node); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return "map literal", node.Pos(), true
			}
		}
	case *ast.FuncLit:
		return "closure", node.Pos(), true
	}
	return "", token.NoPos, false
}
