package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// epsilonHelperNames are substrings that mark a function as a named
// epsilon-comparison helper; exact float equality is the helper's job
// (e.g. the `a == b` fast path of numeric.AlmostEqual that makes
// equal infinities compare equal), so its body is exempt.
var epsilonHelperNames = []string{"almostequal", "approxeq", "floateq"}

// FloatEq returns the analyzer forbidding == and != between
// floating-point operands. Exact float comparison is almost always a
// latent bug in iterative numeric code; use numeric.AlmostEqual or an
// explicit tolerance. Three well-defined idioms stay legal: comparing
// against the exact zero constant (sign/sentinel tests in the root
// finders), comparing against ±Inf via math.Inf (infeasibility
// sentinels), and x != x (a NaN probe). Named epsilon helpers (see
// epsilonHelperNames) are exempt wholesale.
func FloatEq() *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc: "forbids ==/!= on float operands outside named epsilon helpers " +
			"(zero-constant, math.Inf, and x != x comparisons are allowed)",
		Run: runFloatEq,
	}
}

func runFloatEq(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && isEpsilonHelper(fd.Name.Name) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if !isFloat(pass, bin.X) && !isFloat(pass, bin.Y) {
					return true
				}
				if exemptFloatCompare(pass, bin) {
					return true
				}
				pass.Reportf(bin.OpPos,
					"%s on float operands: exact float comparison is unreliable — "+
						"use numeric.AlmostEqual or an explicit tolerance", bin.Op)
				return true
			})
		}
	}
	return nil
}

// isEpsilonHelper reports whether a function name marks a documented
// epsilon-comparison helper whose body may compare floats exactly.
func isEpsilonHelper(name string) bool {
	lower := strings.ToLower(name)
	for _, marker := range epsilonHelperNames {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

// isFloat reports whether an expression has floating-point type
// (including untyped float constants).
func isFloat(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// exemptFloatCompare recognizes the three float-comparison idioms that
// are exact by construction: comparison against the zero constant,
// comparison against ±Inf produced by math.Inf, and self-comparison
// (the NaN probe x != x).
func exemptFloatCompare(pass *Pass, bin *ast.BinaryExpr) bool {
	if types.ExprString(bin.X) == types.ExprString(bin.Y) {
		return true // NaN probe
	}
	return isZeroConst(pass, bin.X) || isZeroConst(pass, bin.Y) ||
		isMathInf(pass, bin.X) || isMathInf(pass, bin.Y)
}

// isZeroConst reports whether e is a compile-time constant equal to
// exactly zero.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// isMathInf reports whether e is a direct call to math.Inf.
func isMathInf(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeOf(pass.Info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == "Inf"
}
