package analysis

// callgraph.go — the whole-module static call graph behind the
// transitive checks (determinism, nopanic, hotalloc). Nodes are the
// module's own functions and methods (every *types.Func with a body in
// a loaded package); edges are call sites, each carrying its position
// and the resolution kind, so findings can print the offending chain
// with per-edge provenance.
//
// Resolution is deliberately conservative (see DESIGN.md §13):
//
//   - Static calls (direct function and concrete-method calls) resolve
//     exactly.
//   - Interface method calls fan out to every module type whose method
//     set satisfies the interface (value and pointer receivers), i.e.
//     class-hierarchy analysis over the module's named types.
//   - Function values are handled at the point a function's VALUE is
//     taken: any reference to a module function outside call position
//     (assigned, passed as an argument, stored in a table, taken as a
//     method value) adds a "funcvalue" edge from the referencing
//     function — the referencer is assumed to (eventually) invoke it.
//     Calls through variables and parameters therefore need no global
//     signature matching: the edge exists where the value was taken.
//   - Function literals are folded into their enclosing declared
//     function: a closure's calls are edges of the function that
//     defines it.
//
// Known over- and under-approximations: a function value stored by one
// function and invoked by another is charged to the storer, not the
// invoker; function references in package-level variable initializers
// (outside any function body) are not tracked.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EdgeKind classifies how a call edge was resolved.
type EdgeKind string

// The three edge provenances: exact static resolution, conservative
// interface-dispatch fan-out, and function-value reference.
const (
	EdgeStatic    EdgeKind = "static"
	EdgeInterface EdgeKind = "interface"
	EdgeFuncValue EdgeKind = "funcvalue"
)

// CallEdge is one resolved call (or function-value reference) from
// Caller to Callee at Pos.
type CallEdge struct {
	Caller *types.Func
	Callee *types.Func
	Pos    token.Pos
	Kind   EdgeKind
}

// CallGraph is the module's call graph: functions with bodies, their
// outgoing and incoming edges, and the packages they belong to.
type CallGraph struct {
	mod   *Module
	decls map[*types.Func]*ast.FuncDecl
	pkgOf map[*types.Func]*Package
	funcs []*types.Func // deterministic order: file name, then position
	order map[*types.Func]int
	out   map[*types.Func][]CallEdge
	in    map[*types.Func][]CallEdge
}

// BuildCallGraph constructs the call graph over the given loaded
// packages (normally every package the module loader has seen:
// the analyzed set plus its module-internal dependencies).
func BuildCallGraph(mod *Module, pkgs []*Package) *CallGraph {
	g := &CallGraph{
		mod:   mod,
		decls: make(map[*types.Func]*ast.FuncDecl),
		pkgOf: make(map[*types.Func]*Package),
		order: make(map[*types.Func]int),
		out:   make(map[*types.Func][]CallEdge),
		in:    make(map[*types.Func][]CallEdge),
	}
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })

	// Pass 1: nodes — every declared function/method with a body — and
	// the module's named types (the interface-dispatch universe).
	var named []*types.Named
	for _, pkg := range sorted {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.decls[obj] = fd
				g.pkgOf[obj] = pkg
				g.funcs = append(g.funcs, obj)
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if n, ok := tn.Type().(*types.Named); ok {
					named = append(named, n)
				}
			}
		}
	}
	sort.SliceStable(g.funcs, func(i, j int) bool {
		a, b := g.mod.Fset.Position(g.decls[g.funcs[i]].Pos()), g.mod.Fset.Position(g.decls[g.funcs[j]].Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for i, fn := range g.funcs {
		g.order[fn] = i
	}

	// Pass 2: edges.
	for _, caller := range g.funcs {
		g.addEdgesFrom(caller, named)
	}
	for fn := range g.out {
		edges := g.out[fn]
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Pos != edges[j].Pos {
				return edges[i].Pos < edges[j].Pos
			}
			return g.order[edges[i].Callee] < g.order[edges[j].Callee]
		})
	}
	for fn := range g.in {
		edges := g.in[fn]
		sort.Slice(edges, func(i, j int) bool {
			if a, b := g.order[edges[i].Caller], g.order[edges[j].Caller]; a != b {
				return a < b
			}
			return edges[i].Pos < edges[j].Pos
		})
	}
	return g
}

// addEdgesFrom walks one declared function's body (function literals
// included — closures belong to their declarer) and records its edges.
func (g *CallGraph) addEdgesFrom(caller *types.Func, named []*types.Named) {
	pkg := g.pkgOf[caller]
	fd := g.decls[caller]

	// Identifiers in direct-callee position: these resolve as calls, so
	// the same identifier must not also count as a value reference.
	calleeIdents := make(map[*ast.Ident]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			calleeIdents[fun] = true
		case *ast.SelectorExpr:
			calleeIdents[fun.Sel] = true
		}
		return true
	})

	ast.Inspect(fd, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			fn := calleeOf(pkg.Info, node)
			if fn == nil {
				return true // call through a value; edged where the value was taken
			}
			if recv := recvOf(fn); recv != nil && types.IsInterface(recv.Type()) {
				g.addInterfaceEdges(caller, node, fn, recv, named)
				return true
			}
			if _, inModule := g.decls[fn]; inModule {
				g.addEdge(CallEdge{Caller: caller, Callee: fn, Pos: node.Pos(), Kind: EdgeStatic})
			}
		case *ast.Ident:
			if calleeIdents[node] {
				return true
			}
			if fn, ok := pkg.Info.Uses[node].(*types.Func); ok {
				if _, inModule := g.decls[fn]; inModule {
					g.addEdge(CallEdge{Caller: caller, Callee: fn, Pos: node.Pos(), Kind: EdgeFuncValue})
				}
			}
		}
		return true
	})
}

// addInterfaceEdges fans an interface method call out to every module
// type whose method set satisfies the receiver interface.
func (g *CallGraph) addInterfaceEdges(caller *types.Func, call *ast.CallExpr, ifaceMethod *types.Func, recv *types.Var, named []*types.Named) {
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, n := range named {
		if types.IsInterface(n) {
			continue
		}
		var impl types.Type
		switch {
		case types.Implements(n, iface):
			impl = n
		case types.Implements(types.NewPointer(n), iface):
			impl = types.NewPointer(n)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, ifaceMethod.Pkg(), ifaceMethod.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if _, inModule := g.decls[m]; inModule {
			g.addEdge(CallEdge{Caller: caller, Callee: m, Pos: call.Pos(), Kind: EdgeInterface})
		}
	}
}

func (g *CallGraph) addEdge(e CallEdge) {
	g.out[e.Caller] = append(g.out[e.Caller], e)
	g.in[e.Callee] = append(g.in[e.Callee], e)
}

// Functions returns every module function with a body, in deterministic
// (file, position) order.
func (g *CallGraph) Functions() []*types.Func { return g.funcs }

// Decl returns the declaration of a module function, or nil if fn is
// not a node of the graph.
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// PkgOf returns the loaded package a module function belongs to.
func (g *CallGraph) PkgOf(fn *types.Func) *Package { return g.pkgOf[fn] }

// CalleesOf returns fn's outgoing edges (sorted by call position).
func (g *CallGraph) CalleesOf(fn *types.Func) []CallEdge { return g.out[fn] }

// CallersOf returns fn's incoming edges (sorted by caller, position).
func (g *CallGraph) CallersOf(fn *types.Func) []CallEdge { return g.in[fn] }

// ReverseReach runs a deterministic reverse BFS from the sink functions:
// dist[f] is the minimum number of call edges from f to a sink (0 for
// the sinks themselves) and via[f] is the first edge of one shortest
// path. Functions for which exclude returns true are never traversed.
func (g *CallGraph) ReverseReach(sinks []*types.Func, exclude func(*types.Func) bool) (dist map[*types.Func]int, via map[*types.Func]CallEdge) {
	dist = make(map[*types.Func]int)
	via = make(map[*types.Func]CallEdge)
	queue := make([]*types.Func, 0, len(sinks))
	for _, s := range sinks {
		if exclude != nil && exclude(s) {
			continue
		}
		if _, seen := dist[s]; !seen {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return g.order[queue[i]] < g.order[queue[j]] })
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range g.in[fn] {
			caller := e.Caller
			if _, seen := dist[caller]; seen {
				continue
			}
			if exclude != nil && exclude(caller) {
				continue
			}
			dist[caller] = dist[fn] + 1
			via[caller] = e
			queue = append(queue, caller)
		}
	}
	return dist, via
}

// FuncDisplayName renders a module function for humans and chains:
// "game.solveNE", "(*core.demandMemo).get", "(miner.Profile).Aggregate".
func FuncDisplayName(fn *types.Func) string {
	qual := func(p *types.Package) string { return p.Name() }
	if recv := recvOf(fn); recv != nil {
		return "(" + types.TypeString(recv.Type(), qual) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// recvOf returns fn's receiver variable, or nil for plain functions.
func recvOf(fn *types.Func) *types.Var {
	if sig, ok := fn.Type().(*types.Signature); ok {
		return sig.Recv()
	}
	return nil
}

// calleeOf resolves the function or method object a call invokes, or
// nil when the callee is not a named function (e.g. a func value).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// chainString joins a chain's function names with arrows for inline
// diagnostic messages.
func chainString(frames []Frame) string {
	parts := make([]string, len(frames))
	for i, f := range frames {
		parts[i] = f.Func
	}
	return strings.Join(parts, " → ")
}
