package analysis

import "testing"

// TestErrFlowFixture diffs the errflow analyzer against its fixture:
// discarded, unchecked, and overwritten errors are flagged; fmt and
// builder calls, deferred cleanup, reads between assignments, and
// scoped directives stay silent.
func TestErrFlowFixture(t *testing.T) {
	testFixture(t, "errflow", false, ErrFlow())
}
