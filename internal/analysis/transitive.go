package analysis

// transitive.go — the whole-module halves of the determinism and
// nopanic checks. Both share one shape: scan every module function for
// direct "sink" sites (wall-clock reads, global-rand draws, map-ordered
// output; undocumented panics), drop sinks neutralized by a
// //lint:allow directive at their line, reverse-BFS the call graph
// from the sink functions, and flag every exported function in an
// analyzed package that can reach a sink through at least one call
// edge. The finding is reported at the root's outgoing call site (so a
// line directive there can suppress it) and carries the full shortest
// chain down to the sink.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// sinkSite is one direct violation inside a module function.
type sinkSite struct {
	pos   token.Pos
	label string // short name for messages, e.g. "time.Now (wall clock)"
}

// runDeterminismModule flags exported functions from which a
// determinism violation is transitively reachable. Packages on the
// check's skip list (obs, parallel, sim) are a trust boundary: they
// are neither scanned for sinks nor traversed through.
func runDeterminismModule(mp *ModulePass) error {
	sinks := collectSinks(mp, func(pkg *Package, fd *ast.FuncDecl) *sinkSite {
		var found *sinkSite
		ast.Inspect(fd, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			switch node := n.(type) {
			case *ast.CallExpr:
				if determinismCallViolation(pkg.Info, node) != "" && !mp.Allowed(node.Pos()) {
					fn := calleeOf(pkg.Info, node)
					found = &sinkSite{pos: node.Pos(), label: fn.Pkg().Name() + "." + fn.Name()}
					return false
				}
			case *ast.RangeStmt:
				if emit := mapRangeEmit(pkg.Info, node); emit != nil && !mp.Allowed(emit.Pos()) {
					found = &sinkSite{pos: emit.Pos(), label: "map-ordered output"}
					return false
				}
			}
			return true
		})
		return found
	})
	reportTransitive(mp, sinks, nil,
		"%s transitively reaches %s: %s; solver output must be reproducible — "+
			"fix the leaf or record a //lint:allow determinism rationale at the sink")
	return nil
}

// runNoPanicModule flags exported functions from which an undocumented
// panic is transitively reachable. Functions whose doc comment
// documents panicking behavior (must-style helpers) are a boundary:
// their panics are not sinks and chains do not traverse through them —
// the contract is declared, so callers are presumed to know.
func runNoPanicModule(mp *ModulePass) error {
	sinks := collectSinks(mp, func(pkg *Package, fd *ast.FuncDecl) *sinkSite {
		if docMentionsPanic(fd.Doc) {
			return nil
		}
		var found *sinkSite
		ast.Inspect(fd, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, builtin := pkg.Info.Uses[id].(*types.Builtin); builtin && !mp.Allowed(call.Pos()) {
					found = &sinkSite{pos: call.Pos(), label: "an undocumented panic"}
					return false
				}
			}
			return true
		})
		return found
	})
	documented := func(fn *types.Func) bool {
		fd := mp.Graph.Decl(fn)
		return fd != nil && docMentionsPanic(fd.Doc)
	}
	reportTransitive(mp, sinks, documented,
		"%s transitively reaches %s: %s; return an error from the leaf or document "+
			"the panic as an invariant violation along the chain")
	return nil
}

// collectSinks scans every non-skipped module function for its first
// direct sink site.
func collectSinks(mp *ModulePass, scan func(*Package, *ast.FuncDecl) *sinkSite) map[*types.Func]*sinkSite {
	sinks := make(map[*types.Func]*sinkSite)
	for _, fn := range mp.Graph.Functions() {
		pkg := mp.Graph.PkgOf(fn)
		if mp.Skipped(pkg) {
			continue
		}
		if s := scan(pkg, mp.Graph.Decl(fn)); s != nil {
			sinks[fn] = s
		}
	}
	return sinks
}

// reportTransitive runs the reverse reachability pass and reports one
// finding per exported root (in an analyzed, non-skipped package) that
// can reach a sink through at least one call edge. extraExclude, when
// non-nil, removes additional functions from the traversal (e.g.
// documented-panic helpers).
func reportTransitive(mp *ModulePass, sinks map[*types.Func]*sinkSite,
	extraExclude func(*types.Func) bool, format string) {

	if len(sinks) == 0 {
		return
	}
	sinkFns := make([]*types.Func, 0, len(sinks))
	for fn := range sinks {
		sinkFns = append(sinkFns, fn)
	}
	exclude := func(fn *types.Func) bool {
		if mp.Skipped(mp.Graph.PkgOf(fn)) {
			return true
		}
		return extraExclude != nil && extraExclude(fn)
	}
	dist, via := mp.Graph.ReverseReach(sinkFns, exclude)

	analyzed := make(map[*Package]bool, len(mp.Analyzed))
	for _, pkg := range mp.Analyzed {
		analyzed[pkg] = true
	}
	for _, fn := range mp.Graph.Functions() {
		if !analyzed[mp.Graph.PkgOf(fn)] || dist[fn] < 1 || !exportedRoot(fn) {
			continue
		}
		chain := buildChain(mp, fn, via, dist, sinks)
		sink := sinks[chainSinkFunc(fn, via, dist)]
		mp.Reportf(via[fn].Pos, chain, format, FuncDisplayName(fn), sink.label, chainString(chain))
	}
}

// buildChain follows the shortest-path edges from root down to its
// sink, producing one frame per function plus a final frame at the
// sink site itself.
func buildChain(mp *ModulePass, root *types.Func, via map[*types.Func]CallEdge,
	dist map[*types.Func]int, sinks map[*types.Func]*sinkSite) []Frame {

	frames := make([]Frame, 0, dist[root]+1)
	cur := root
	for dist[cur] > 0 {
		e := via[cur]
		frames = append(frames, mp.FrameAt(cur, e.Pos, e.Kind))
		cur = e.Callee
	}
	frames = append(frames, mp.FrameAt(cur, sinks[cur].pos, ""))
	return frames
}

// chainSinkFunc returns the sink function a root's shortest path ends
// at.
func chainSinkFunc(root *types.Func, via map[*types.Func]CallEdge, dist map[*types.Func]int) *types.Func {
	cur := root
	for dist[cur] > 0 {
		cur = via[cur].Callee
	}
	return cur
}

// exportedRoot reports whether fn is part of the module's exported
// surface: an exported function, or an exported method on an exported
// named type.
func exportedRoot(fn *types.Func) bool {
	if !fn.Exported() {
		return false
	}
	recv := recvOf(fn)
	if recv == nil {
		return true
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Exported()
	}
	return true
}
