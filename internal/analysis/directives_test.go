package analysis

import (
	"strings"
	"testing"
)

// TestDirectivesFixture pins the //lint:allow semantics: honored when
// check and line match (trailing or standalone form), scoped to
// exactly one line and exactly one check.
func TestDirectivesFixture(t *testing.T) {
	testFixture(t, "directives", false, FloatEq(), NoPanic())
}

// TestStaleDirectiveFindings pins the driver's directive hygiene: an
// allow that suppresses nothing is reported as stale, an unknown check
// name is reported, a missing reason is malformed, and a live
// directive stays silent.
func TestStaleDirectiveFindings(t *testing.T) {
	diags := fixtureDiags(t, "stale", true, FloatEq())
	var stale, unknown, malformed int
	for _, d := range diags {
		if d.Check != "directive" {
			t.Errorf("unexpected non-directive diagnostic %s", d)
			continue
		}
		switch {
		case strings.Contains(d.Message, "stale directive"):
			stale++
			if !strings.Contains(d.Message, "floateq") {
				t.Errorf("stale finding should name the check: %s", d)
			}
		case strings.Contains(d.Message, "unknown check"):
			unknown++
			if !strings.Contains(d.Message, "bogus") {
				t.Errorf("unknown-check finding should name the bogus check: %s", d)
			}
		case strings.Contains(d.Message, "malformed directive"):
			malformed++
		default:
			t.Errorf("unclassified directive diagnostic %s", d)
		}
	}
	if stale != 1 || unknown != 1 || malformed != 1 {
		t.Errorf("got stale=%d unknown=%d malformed=%d, want exactly one of each:\n%v",
			stale, unknown, malformed, diags)
	}
}

// TestDirectiveSkippedChecksNotStale pins the interaction between the
// package-level allowlist and directive hygiene: when a check is
// skipped for a package (here nopanic, via PackageSkips), a directive
// naming that check is neither honored nor reported stale — staleness
// can only be judged for checks that actually examined the file.
func TestDirectiveSkippedChecksNotStale(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	rel := "internal/analysis/testdata/directives"
	pkg, err := mod.CheckDir("testdata/directives", mod.Path+"/"+rel)
	if err != nil {
		t.Fatalf("CheckDir: %v", err)
	}
	analyzers := []*Analyzer{FloatEq(), NoPanic()}
	skips := map[string][]string{"nopanic": {rel}}
	diags, err := runSuite(mod, []*Package{pkg}, analyzers, skips, false)
	if err != nil {
		t.Fatalf("runSuite: %v", err)
	}
	var stale int
	for _, d := range diags {
		if d.Check == "directive" && strings.Contains(d.Message, "nopanic") {
			t.Errorf("directive for a package-skipped check must not be judged: %s", d)
		}
		if d.Check == "directive" && strings.Contains(d.Message, "stale") {
			stale++
		}
	}
	// The fixture's Gap function carries the one genuinely stale
	// floateq directive (it covers a blank line).
	if stale != 1 {
		t.Errorf("got %d stale directive findings, want exactly 1 (Gap's):\n%v", stale, diags)
	}
}
