package analysis

import "testing"

func TestMetricNameFixture(t *testing.T) {
	testFixture(t, "metricname", false, MetricName())
}

func TestCheckMetricName(t *testing.T) {
	cases := []struct {
		name, kind string
		wantBad    bool
	}{
		{"core.demand_probes_total", "counter", false},
		{"chain.wins.edge_total", "counter", false},
		{"core.demand_probes", "counter", true},
		{"chain.height", "gauge", false},
		{"height", "gauge", true},
		{"game.sweep_delta", "histogram", false},
		{"core.stackelberg.ms", "histogram", false},
		{"game.solve_ne.iterations", "histogram", false},
		{"game.sweep", "histogram", true},
		{"game.sweep_units", "histogram", true},
		{"game.solve_ne", "span", false},
		{"Game.sweep", "span", true},
		{"game.", "event", true},
		{"game..sweep", "event", true},
		{"game.sweep-rate", "event", true},
	}
	for _, tc := range cases {
		msg := checkMetricName(tc.name, tc.kind)
		if got := msg != ""; got != tc.wantBad {
			t.Errorf("checkMetricName(%q, %s) = %q, wantBad=%v", tc.name, tc.kind, msg, tc.wantBad)
		}
	}
}
