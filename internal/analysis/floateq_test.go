package analysis

import "testing"

func TestFloatEqFixture(t *testing.T) {
	testFixture(t, "floateq", false, FloatEq())
}
