package analysis

import (
	"strings"
)

// DefaultSuite returns the repository's five analyzers in their
// canonical order: determinism, nopanic, floateq, exporteddoc,
// metricname.
func DefaultSuite() []*Analyzer {
	return []*Analyzer{Determinism(), NoPanic(), FloatEq(), ExportedDoc(), MetricName()}
}

// DefaultPackageSkips is the package-level allowlist: for each check,
// the module-relative package prefixes it does not examine (the prefix
// covers subpackages). The observability, parallel, and simulation
// layers legitimately read the wall clock for telemetry — their output
// never feeds solver results — so the determinism check skips them.
func DefaultPackageSkips() map[string][]string {
	return map[string][]string{
		"determinism": {"internal/obs", "internal/parallel", "internal/sim"},
	}
}

// RunConfig configures one suite run.
type RunConfig struct {
	// Dir is the directory patterns are resolved against; the
	// enclosing module is found by walking up to go.mod. Empty means
	// the current directory.
	Dir string
	// Patterns are directory-based package patterns ("./...",
	// "internal/core", ...). Empty means "./...".
	Patterns []string
	// Analyzers are the checks to run. Empty means DefaultSuite.
	Analyzers []*Analyzer
	// PackageSkips maps a check name to module-relative package
	// prefixes it skips. Nil means DefaultPackageSkips; use an empty
	// (non-nil) map to disable skipping.
	PackageSkips map[string][]string
	// NoDirectiveFindings suppresses the pseudo-check "directive"
	// findings (malformed, unknown-check, and stale //lint:allow
	// comments). The fixture harness sets it when running a single
	// analyzer, where staleness cannot be judged.
	NoDirectiveFindings bool
}

// Run loads every package matching the config's patterns, runs the
// configured analyzers over each (honoring the package-level
// allowlist), filters findings through //lint:allow directives, and
// returns the surviving diagnostics sorted by position. A non-nil
// error means the run itself failed (unreadable pattern, parse or
// type-check failure) — findings are not errors.
func Run(cfg RunConfig) ([]Diagnostic, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers := cfg.Analyzers
	if len(analyzers) == 0 {
		analyzers = DefaultSuite()
	}
	skips := cfg.PackageSkips
	if skips == nil {
		skips = DefaultPackageSkips()
	}

	mod, err := LoadModule(dir)
	if err != nil {
		return nil, err
	}
	paths, err := mod.Expand(dir, patterns)
	if err != nil {
		return nil, err
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var all []Diagnostic
	for _, importPath := range paths {
		pkg, err := mod.Load(importPath)
		if err != nil {
			return nil, err
		}
		diags, err := runPackage(mod, pkg, analyzers, skips, known, cfg.NoDirectiveFindings)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sortDiagnostics(all)
	return all, nil
}

// runPackage executes the applicable analyzers over one loaded package
// and resolves directives against the raw findings.
func runPackage(mod *Module, pkg *Package, analyzers []*Analyzer,
	skips map[string][]string, known map[string]bool, noDirectives bool) ([]Diagnostic, error) {

	rel := strings.TrimPrefix(strings.TrimPrefix(pkg.ImportPath, mod.Path), "/")
	ran := make(map[string]bool)
	var raw []Diagnostic
	for _, a := range analyzers {
		if skipped(skips[a.Name], rel) {
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Fset:       mod.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			ImportPath: pkg.ImportPath,
			analyzer:   a,
			report: func(d Diagnostic) {
				d.File = mod.Rel(d.File)
				raw = append(raw, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}

	directives := scanDirectives(mod, pkg)
	diags := applyDirectives(raw, directives, ran)
	if !noDirectives {
		diags = append(diags, directiveFindings(directives, known, ran)...)
	}
	return diags, nil
}

// skipped reports whether a module-relative package path matches one
// of the skip prefixes (a prefix covers the package and its subtree).
func skipped(prefixes []string, rel string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}
