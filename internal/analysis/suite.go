package analysis

import (
	"sort"
	"strings"
)

// DefaultSuite returns the repository's eight analyzers in their
// canonical order: determinism, nopanic, floateq, exporteddoc,
// metricname, errflow, concurrency, hotalloc. Together with the
// directive-hygiene pseudo-check this is the nine-check suite
// cmd/minelint runs by default.
func DefaultSuite() []*Analyzer {
	return []*Analyzer{
		Determinism(), NoPanic(), FloatEq(), ExportedDoc(), MetricName(),
		ErrFlow(), Concurrency(), HotAlloc(),
	}
}

// DefaultPackageSkips is the package-level allowlist: for each check,
// the module-relative package prefixes it does not examine (the prefix
// covers subpackages).
//
//   - determinism skips the observability, parallel, simulation, and
//     serving layers, which legitimately read the wall clock (telemetry
//     timestamps; request-latency percentiles in internal/serve and its
//     loadgen subpackage) — their output never feeds solver results:
//     everything a solver computes flows through internal/core, which
//     stays fully checked. The transitive half of the check treats the
//     same packages as a trust boundary: call chains stop at their edge
//     rather than traversing through.
//   - concurrency skips the approved concurrency owners: the
//     deterministic pool (internal/parallel), observability servers
//     (internal/obs), the streaming population layer
//     (internal/population), and the serving daemon (internal/serve),
//     which owns the HTTP listener lifecycle, the single-flight result
//     cache, and graceful-drain signaling — request handling is
//     inherently concurrent, and the determinism the rest of the repo
//     protects is preserved by construction (responses are
//     byte-identical to sequential solves; pinned by the serve race
//     tests). Everyone else must ride those.
//   - hotalloc skips internal/obs and internal/parallel: telemetry and
//     pool plumbing allocate only in enabled/startup modes, and the
//     disabled-mode cost is pinned by the allocation-budget benchmarks,
//     so hot-path chains stop at that boundary.
func DefaultPackageSkips() map[string][]string {
	return map[string][]string{
		"determinism": {"internal/obs", "internal/parallel", "internal/sim", "internal/serve"},
		"concurrency": {"internal/parallel", "internal/obs", "internal/population", "internal/serve"},
		"hotalloc":    {"internal/obs", "internal/parallel"},
	}
}

// RunConfig configures one suite run.
type RunConfig struct {
	// Dir is the directory patterns are resolved against; the
	// enclosing module is found by walking up to go.mod. Empty means
	// the current directory.
	Dir string
	// Patterns are directory-based package patterns ("./...",
	// "internal/core", ...). Empty means "./...".
	Patterns []string
	// Analyzers are the checks to run. Empty means DefaultSuite.
	Analyzers []*Analyzer
	// PackageSkips maps a check name to module-relative package
	// prefixes it skips. Nil means DefaultPackageSkips; use an empty
	// (non-nil) map to disable skipping.
	PackageSkips map[string][]string
	// NoDirectiveFindings suppresses the pseudo-check "directive"
	// findings (malformed, unknown-check, and stale //lint:allow
	// comments). The fixture harness sets it when running a single
	// analyzer, where staleness cannot be judged.
	NoDirectiveFindings bool
}

// Run loads every package matching the config's patterns, runs the
// configured analyzers over each (honoring the package-level
// allowlist), builds the whole-module call graph and runs the
// module-level (interprocedural) passes, filters findings through
// //lint:allow directives, and returns the surviving diagnostics
// sorted by position. A non-nil error means the run itself failed
// (unreadable pattern, parse or type-check failure) — findings are
// not errors.
func Run(cfg RunConfig) ([]Diagnostic, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers := cfg.Analyzers
	if len(analyzers) == 0 {
		analyzers = DefaultSuite()
	}
	skips := cfg.PackageSkips
	if skips == nil {
		skips = DefaultPackageSkips()
	}

	mod, err := LoadModule(dir)
	if err != nil {
		return nil, err
	}
	paths, err := mod.Expand(dir, patterns)
	if err != nil {
		return nil, err
	}
	analyzed := make([]*Package, 0, len(paths))
	for _, importPath := range paths {
		pkg, err := mod.Load(importPath)
		if err != nil {
			return nil, err
		}
		analyzed = append(analyzed, pkg)
	}
	return runSuite(mod, analyzed, analyzers, skips, cfg.NoDirectiveFindings)
}

// runSuite is the shared driver behind Run and the fixture harness:
// per-package passes, then the whole-module passes over the call
// graph, then directive resolution across all raw findings.
func runSuite(mod *Module, analyzed []*Package, analyzers []*Analyzer,
	skips map[string][]string, noDirectives bool) ([]Diagnostic, error) {

	known := make(map[string]bool, len(analyzers))
	hasModulePass := false
	for _, a := range analyzers {
		known[a.Name] = true
		if a.RunModule != nil {
			hasModulePass = true
		}
	}

	// Per-package state: the package's directives and the set of
	// checks that examined it (which decides directive eligibility
	// and staleness).
	type pkgState struct {
		pkg        *Package
		rel        string
		directives []*directive
		ran        map[string]bool
	}
	states := make([]*pkgState, 0, len(analyzed))
	stateByFile := make(map[string]*pkgState)
	for _, pkg := range analyzed {
		st := &pkgState{
			pkg:        pkg,
			rel:        relImportPath(mod, pkg.ImportPath),
			directives: scanDirectives(mod, pkg),
			ran:        make(map[string]bool),
		}
		states = append(states, st)
		for _, file := range pkg.Files {
			stateByFile[mod.Rel(mod.Fset.Position(file.Pos()).Filename)] = st
		}
	}

	var raw []Diagnostic
	report := func(d Diagnostic) {
		d.File = mod.Rel(d.File)
		raw = append(raw, d)
	}

	// Per-package (intra-procedural) passes.
	for _, st := range states {
		for _, a := range analyzers {
			if skipped(skips[a.Name], st.rel) {
				continue
			}
			st.ran[a.Name] = true
			if a.Run == nil {
				continue // module-only analyzer; ran-marking still applies
			}
			pass := &Pass{
				Fset:       mod.Fset,
				Files:      st.pkg.Files,
				Pkg:        st.pkg.Types,
				Info:       st.pkg.Info,
				ImportPath: st.pkg.ImportPath,
				analyzer:   a,
				report:     report,
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}

	// Whole-module (interprocedural) passes. The graph spans every
	// package the loader has seen — analyzed packages plus their
	// module-internal dependencies — so chains cross package
	// boundaries; //lint:allow directives anywhere in that universe
	// neutralize sinks.
	if hasModulePass {
		all := loadedUniverse(mod, analyzed)
		graph := BuildCallGraph(mod, all)
		allowIdx := buildAllowIndex(mod, all)
		for _, a := range analyzers {
			if a.RunModule == nil {
				continue
			}
			prefixes := skips[a.Name]
			var examined []*Package
			for _, st := range states {
				if !skipped(prefixes, st.rel) {
					examined = append(examined, st.pkg)
				}
			}
			mp := &ModulePass{
				Mod:      mod,
				Graph:    graph,
				Analyzed: examined,
				analyzer: a,
				skipRel:  func(rel string) bool { return skipped(prefixes, rel) },
				allowed:  allowIdx[a.Name],
				report:   report,
			}
			if err := a.RunModule(mp); err != nil {
				return nil, err
			}
		}
	}

	// Directive resolution: suppress allowed findings, then report
	// directive hygiene (malformed, unknown, stale).
	var final []Diagnostic
	for _, diag := range raw {
		st := stateByFile[diag.File]
		if st == nil {
			final = append(final, diag)
			continue
		}
		if len(applyDirectives([]Diagnostic{diag}, st.directives, st.ran)) > 0 {
			final = append(final, diag)
		}
	}
	if !noDirectives {
		for _, st := range states {
			final = append(final, directiveFindings(st.directives, known, st.ran)...)
		}
	}
	sortDiagnostics(final)
	return final, nil
}

// loadedUniverse returns every package the module loader has seen —
// the analyzed set plus all module-internal dependencies loaded while
// type-checking — deduplicated and sorted by import path.
func loadedUniverse(mod *Module, analyzed []*Package) []*Package {
	seen := make(map[string]bool, len(analyzed))
	var all []*Package
	for _, pkg := range analyzed {
		if !seen[pkg.ImportPath] {
			seen[pkg.ImportPath] = true
			all = append(all, pkg)
		}
	}
	for path, pkg := range mod.pkgs {
		if pkg == nil || seen[path] {
			continue
		}
		seen[path] = true
		all = append(all, pkg)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ImportPath < all[j].ImportPath })
	return all
}

// buildAllowIndex maps check -> file -> target line for every
// well-formed //lint:allow directive in the given packages. Module
// passes consult it so a directive at a sink call site neutralizes the
// sink for transitive traversal, not just the local finding.
func buildAllowIndex(mod *Module, pkgs []*Package) map[string]map[string]map[int]bool {
	idx := make(map[string]map[string]map[int]bool)
	for _, pkg := range pkgs {
		for _, d := range scanDirectives(mod, pkg) {
			if d.malformed != "" {
				continue
			}
			files := idx[d.check]
			if files == nil {
				files = make(map[string]map[int]bool)
				idx[d.check] = files
			}
			lines := files[d.file]
			if lines == nil {
				lines = make(map[int]bool)
				files[d.file] = lines
			}
			lines[d.target] = true
		}
	}
	return idx
}

// relImportPath strips the module path prefix from an import path,
// yielding the module-relative package path skip prefixes match on.
func relImportPath(mod *Module, importPath string) string {
	return strings.TrimPrefix(strings.TrimPrefix(importPath, mod.Path), "/")
}

// skipped reports whether a module-relative package path matches one
// of the skip prefixes (a prefix covers the package and its subtree).
func skipped(prefixes []string, rel string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}
