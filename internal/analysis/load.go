package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked (non-test) package of the module.
type Package struct {
	// ImportPath is the package's import path.
	ImportPath string
	// Dir is the package's directory on disk.
	Dir string
	// Files are the parsed non-test Go files, in filename order.
	Files []*ast.File
	// Types is the type-checker's package object.
	Types *types.Package
	// Info holds expression types, definitions, and uses.
	Info *types.Info
}

// Module loads and type-checks packages of a single Go module without
// any dependency beyond the standard library: module-internal imports
// are resolved recursively from source, and everything else is handed
// to the standard library's source importer (which compiles GOROOT
// packages from source, so no pre-built export data is needed).
type Module struct {
	// Root is the directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset is the file set shared by all packages the module loads.
	Fset *token.FileSet

	std  types.Importer
	pkgs map[string]*Package
	srcs map[string][]byte
}

// LoadModule locates the enclosing module of dir (walking up to the
// nearest go.mod) and returns a loader for it.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found in or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Module{
		Root: root,
		Path: modPath,
		Fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*Package),
		srcs: make(map[string][]byte),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Import implements types.Importer: module-internal paths load
// recursively from source, everything else falls through to the
// standard library's source importer.
func (m *Module) Import(path string) (*types.Package, error) {
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		pkg, err := m.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// Load parses and type-checks the module package with the given import
// path (memoized; import cycles are reported as errors).
func (m *Module) Load(importPath string) (*Package, error) {
	if pkg, ok := m.pkgs[importPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
		}
		return pkg, nil
	}
	m.pkgs[importPath] = nil // cycle marker
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, m.Path), "/")
	dir := filepath.Join(m.Root, filepath.FromSlash(rel))
	pkg, err := m.CheckDir(dir, importPath)
	if err != nil {
		delete(m.pkgs, importPath)
		return nil, err
	}
	m.pkgs[importPath] = pkg
	return pkg, nil
}

// CheckDir parses and type-checks the non-test Go files of a single
// directory under the given import path. It is the low-level entry the
// fixture test harness uses to load testdata directories that the
// normal pattern expansion deliberately skips.
func (m *Module) CheckDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		m.srcs[path] = src
		file, err := parser.ParseFile(m.Fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, file)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: m}
	tpkg, err := conf.Check(importPath, m.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", importPath, err)
	}
	return &Package{ImportPath: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// Source returns the raw bytes of a file the module has loaded, or nil
// if the file has not been parsed by this loader.
func (m *Module) Source(filename string) []byte { return m.srcs[filename] }

// Rel makes path relative to the module root when possible; otherwise
// it returns path unchanged. Used to keep diagnostics portable.
func (m *Module) Rel(path string) string {
	if rel, err := filepath.Rel(m.Root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return path
}

// Expand resolves package patterns into sorted module import paths.
// Patterns are directory-based, relative to base: "./..." (or
// "dir/...") walks recursively, anything else names a single package
// directory. Hidden directories and testdata/results trees are
// skipped, as are directories with no non-test Go files.
func (m *Module) Expand(base string, patterns []string) ([]string, error) {
	absBase, err := filepath.Abs(base)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var paths []string
	add := func(dir string) error {
		ip, err := m.importPathFor(dir)
		if err != nil {
			return err
		}
		if !seen[ip] {
			seen[ip] = true
			paths = append(paths, ip)
		}
		return nil
	}
	for _, pat := range patterns {
		if rest, recursive := strings.CutSuffix(pat, "..."); recursive {
			start := filepath.Join(absBase, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(start, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != start && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "results") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					return add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := filepath.Join(absBase, filepath.FromSlash(pat))
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("analysis: no non-test Go files match pattern %q", pat)
		}
		if err := add(dir); err != nil {
			return nil, err
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// importPathFor maps a directory inside the module to its import path.
func (m *Module) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: directory %s is outside module %s", dir, m.Root)
	}
	if rel == "." {
		return m.Path, nil
	}
	return m.Path + "/" + filepath.ToSlash(rel), nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go source file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}
