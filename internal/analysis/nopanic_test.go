package analysis

import "testing"

func TestNoPanicFixture(t *testing.T) {
	testFixture(t, "nopanic", false, NoPanic())
}
