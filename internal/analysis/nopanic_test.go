package analysis

import "testing"

func TestNoPanicFixture(t *testing.T) {
	testFixture(t, "nopanic", false, NoPanic())
}

// TestNoPanicTransitiveFixture diffs the module half: exported
// functions reaching an undocumented panic through the call graph are
// flagged with the chain; documented must-helpers are a boundary.
func TestNoPanicTransitiveFixture(t *testing.T) {
	testFixture(t, "nopanictrans", false, NoPanic())
}
