package analysis

import (
	"go/ast"
	"go/types"
)

// ErrFlow returns the analyzer enforcing the repository's error-flow
// discipline in library code: error results must be inspected, not
// dropped. It flags three shapes:
//
//   - discarded errors: `_ = f()` and `v, _ := f()` where the blanked
//     result is an error;
//   - unchecked calls: an error-returning call used as a bare
//     statement, so the error vanishes without even a blank;
//   - overwritten errors: an err variable assigned from one call and
//     reassigned before any statement reads it (straight-line within a
//     block; branches conservatively reset tracking).
//
// Calls into package fmt and methods on *bytes.Buffer and
// *strings.Builder are exempt — their error results are structurally
// nil by documented contract. Deferred calls are also exempt (wrapping
// deferred cleanup to capture its error is a policy the repo does not
// impose).
func ErrFlow() *Analyzer {
	return &Analyzer{
		Name: "errflow",
		Doc: "forbids discarding error results (_ =, v, _ :=), calling error-returning " +
			"functions as bare statements, and overwriting an err variable before it is read",
		Run: runErrFlow,
	}
}

func runErrFlow(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ExprStmt:
				checkUncheckedCall(pass, node)
			case *ast.AssignStmt:
				checkDiscardedError(pass, node)
			case *ast.BlockStmt:
				checkErrOverwrite(pass, node)
			}
			return true
		})
	}
	return nil
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the error interface (the
// type error results are declared as).
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// errflowExempt reports whether a call's error result is structurally
// uninteresting: the fmt print family and the never-failing builder
// types (bytes.Buffer, strings.Builder) document nil errors.
func errflowExempt(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	if recv := recvOf(fn); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
			full := n.Obj().Pkg().Path() + "." + n.Obj().Name()
			return full == "bytes.Buffer" || full == "strings.Builder"
		}
	}
	return false
}

// callDisplay renders a call's target for messages ("foo", "x.Close").
func callDisplay(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeOf(info, call); fn != nil {
		if recv := recvOf(fn); recv != nil {
			qual := func(p *types.Package) string { return p.Name() }
			return "(" + types.TypeString(recv.Type(), qual) + ")." + fn.Name()
		}
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "the call"
}

// checkUncheckedCall flags an error-returning call used as a bare
// statement.
func checkUncheckedCall(pass *Pass, stmt *ast.ExprStmt) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	t := pass.Info.TypeOf(call)
	if t == nil {
		return
	}
	hasErr := false
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				hasErr = true
			}
		}
	default:
		hasErr = isErrorType(rt)
	}
	if hasErr && !errflowExempt(pass.Info, call) {
		pass.Reportf(call.Pos(),
			"%s returns an error that is never checked; inspect it, return it, or log it via internal/obs",
			callDisplay(pass.Info, call))
	}
}

// checkDiscardedError flags blank-assigned error results:
// `_ = f()`, `v, _ := f()`, and the element-wise form `_, _ = a(), b()`.
func checkDiscardedError(pass *Pass, assign *ast.AssignStmt) {
	report := func(call *ast.CallExpr) {
		if !errflowExempt(pass.Info, call) {
			pass.Reportf(call.Pos(),
				"error result of %s discarded with _; inspect it, return it, or log it via internal/obs",
				callDisplay(pass.Info, call))
		}
	}
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		// v, err := f() — a single multi-value call.
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pass.Info.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(assign.Lhs) {
			return
		}
		for i, lhs := range assign.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				report(call)
				return
			}
		}
		return
	}
	for i, lhs := range assign.Lhs {
		if !isBlank(lhs) || i >= len(assign.Rhs) {
			continue
		}
		call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if isErrorType(pass.Info.TypeOf(call)) {
			report(call)
		}
	}
}

// isBlank reports whether an expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// checkErrOverwrite walks one block's statements in straight-line
// order, tracking error variables assigned from a call, and flags a
// reassignment that happens before any statement reads the pending
// value. Any statement with nested control flow resets tracking — the
// check is deliberately conservative and only catches the
// unconditionally-lost case.
func checkErrOverwrite(pass *Pass, block *ast.BlockStmt) {
	type pendingErr struct {
		pos  ast.Node // the assignment whose value gets lost
		name string
	}
	pending := make(map[types.Object]pendingErr)
	for _, stmt := range block.List {
		assign, ok := stmt.(*ast.AssignStmt)
		if !ok {
			// Non-assignment statement: any mention of a pending err
			// counts as a read; nested control flow resets everything.
			reads := stmtReads(pass, stmt, nil)
			for obj := range pending {
				if reads[obj] {
					delete(pending, obj)
				}
			}
			if hasNestedFlow(stmt) {
				pending = make(map[types.Object]pendingErr)
			}
			continue
		}
		// Reads on the RHS (and in LHS index expressions) clear first.
		lhsTargets := make(map[*ast.Ident]bool)
		for _, lhs := range assign.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				lhsTargets[id] = true
			}
		}
		reads := stmtReads(pass, assign, lhsTargets)
		for obj := range pending {
			if reads[obj] {
				delete(pending, obj)
			}
		}
		// Now process writes: a write to a still-pending err is the
		// finding; afterwards, error-typed targets assigned from a
		// call become pending themselves.
		fromCall := false
		for _, rhs := range assign.Rhs {
			if _, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				fromCall = true
			}
		}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil || !isErrorType(obj.Type()) {
				continue
			}
			if prev, ok := pending[obj]; ok {
				pass.Reportf(prev.pos.Pos(),
					"error assigned to %s is overwritten on line %d before it is read; "+
						"inspect each error before reusing the variable",
					prev.name, pass.Fset.Position(id.Pos()).Line)
			}
			if fromCall {
				pending[obj] = pendingErr{pos: assign, name: id.Name}
			} else {
				delete(pending, obj)
			}
		}
	}
}

// stmtReads collects the objects read by a statement: every identifier
// use except the direct assignment targets passed in lhs.
func stmtReads(pass *Pass, stmt ast.Stmt, lhs map[*ast.Ident]bool) map[types.Object]bool {
	reads := make(map[types.Object]bool)
	ast.Inspect(stmt, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || lhs[id] {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil {
			reads[obj] = true
		}
		return true
	})
	return reads
}

// hasNestedFlow reports whether a statement contains control flow that
// could read or skip pending assignments on some path.
func hasNestedFlow(stmt ast.Stmt) bool {
	switch stmt.(type) {
	case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
		*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt,
		*ast.DeferStmt, *ast.GoStmt, *ast.BlockStmt:
		return true
	}
	return false
}
