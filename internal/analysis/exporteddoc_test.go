package analysis

import "testing"

func TestExportedDocFixture(t *testing.T) {
	testFixture(t, "exporteddoc", false, ExportedDoc())
}
