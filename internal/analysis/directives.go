package analysis

import (
	"bytes"
	"fmt"
	"strings"
)

// directivePrefix introduces a line-scoped suppression comment:
//
//	//lint:allow <check> <reason>
//
// The directive suppresses findings of exactly one check on exactly
// one line: the line it shares with code, or — when the comment stands
// alone — the line directly below it.
const directivePrefix = "//lint:allow"

// directive is one parsed //lint:allow comment.
type directive struct {
	pos       Diagnostic // position (and pseudo-check name) for directive findings
	file      string
	line      int // source line of the comment itself
	target    int // line whose findings the directive suppresses
	check     string
	reason    string
	malformed string // non-empty: why the directive cannot be honored
	used      bool
}

// minelintPrefix introduces a function-annotation comment:
//
//	//minelint:<verb> [note]
//
// The only supported verb is hotpath, which marks a function
// declaration for the hotalloc check. Unlike //lint:allow, a minelint
// annotation must live in the function's doc comment group.
const minelintPrefix = "//minelint:"

// parseAllowDirective parses one comment's text as a //lint:allow
// directive. ok is false when the comment is not a //lint:allow
// directive at all (including //lint:allowX-style near-misses, which
// are some other tool's token). When ok, either check+reason are
// populated or malformed says why the directive cannot be honored.
func parseAllowDirective(text string) (check, reason, malformed string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", "", false
	}
	fields := strings.Fields(rest)
	switch {
	case len(fields) == 0:
		return "", "", "missing check name and reason (want //lint:allow <check> <reason>)", true
	case len(fields) == 1:
		return fields[0], "", "missing reason (want //lint:allow <check> <reason>)", true
	default:
		return fields[0], strings.Join(fields[1:], " "), "", true
	}
}

// parseMinelintDirective parses one comment's text as a
// //minelint:<verb> annotation. ok is false when the comment does not
// carry the //minelint: prefix. verb is the token directly after the
// colon (possibly empty for a bare "//minelint:"); note is any
// trailing free text.
func parseMinelintDirective(text string) (verb, note string, ok bool) {
	if !strings.HasPrefix(text, minelintPrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, minelintPrefix)
	verb = rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb, note = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	return verb, note, true
}

// scanDirectives extracts every //lint:allow directive from a loaded
// package. The module's retained sources decide whether a directive
// shares its line with code (suppressing that line) or stands alone
// (suppressing the next line).
func scanDirectives(m *Module, pkg *Package) []*directive {
	var out []*directive
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				check, reason, malformed, ok := parseAllowDirective(c.Text)
				if !ok {
					continue
				}
				pos := m.Fset.Position(c.Pos())
				d := &directive{
					file:      m.Rel(pos.Filename),
					line:      pos.Line,
					target:    pos.Line,
					check:     check,
					reason:    reason,
					malformed: malformed,
				}
				d.pos = Diagnostic{File: d.file, Line: pos.Line, Col: pos.Column, Check: "directive"}
				if standsAlone(m.Source(pos.Filename), pos.Line, pos.Column) {
					d.target = pos.Line + 1
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// standsAlone reports whether the comment starting at (line, col) has
// nothing but whitespace before it on its line, i.e. it is a
// standalone directive that applies to the following line.
func standsAlone(src []byte, line, col int) bool {
	if src == nil {
		return false
	}
	lines := bytes.Split(src, []byte("\n"))
	if line-1 >= len(lines) || col < 1 {
		return false
	}
	prefix := lines[line-1]
	if col-1 < len(prefix) {
		prefix = prefix[:col-1]
	}
	return len(bytes.TrimSpace(prefix)) == 0
}

// applyDirectives drops findings suppressed by a directive (marking
// the directive used) and returns the survivors. Only checks named in
// ran — the analyzers that actually examined the package — are
// eligible, so a directive can never "suppress" a check that was
// skipped for its package.
func applyDirectives(diags []Diagnostic, directives []*directive, ran map[string]bool) []Diagnostic {
	kept := diags[:0]
	for _, diag := range diags {
		suppressed := false
		for _, d := range directives {
			if d.malformed == "" && ran[d.check] && d.check == diag.Check &&
				d.file == diag.File && d.target == diag.Line {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	return kept
}

// directiveFindings reports malformed, unknown-check, and stale
// directives as pseudo-check "directive" diagnostics. known is the set
// of check names in the configured suite; ran is the subset that
// actually examined the directive's package (a directive for a check
// that was package-skipped is left alone rather than called stale).
func directiveFindings(directives []*directive, known, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range directives {
		diag := d.pos
		switch {
		case d.malformed != "":
			diag.Message = "malformed directive: " + d.malformed
		case !known[d.check]:
			diag.Message = fmt.Sprintf("directive names unknown check %q", d.check)
		case ran[d.check] && !d.used:
			diag.Message = fmt.Sprintf(
				"stale directive: //lint:allow %s no longer suppresses any finding on line %d; delete it",
				d.check, d.target)
		default:
			continue
		}
		out = append(out, diag)
	}
	return out
}
