package analysis

import (
	"bytes"
	"fmt"
	"strings"
)

// directivePrefix introduces a line-scoped suppression comment:
//
//	//lint:allow <check> <reason>
//
// The directive suppresses findings of exactly one check on exactly
// one line: the line it shares with code, or — when the comment stands
// alone — the line directly below it.
const directivePrefix = "//lint:allow"

// directive is one parsed //lint:allow comment.
type directive struct {
	pos       Diagnostic // position (and pseudo-check name) for directive findings
	file      string
	line      int // source line of the comment itself
	target    int // line whose findings the directive suppresses
	check     string
	reason    string
	malformed string // non-empty: why the directive cannot be honored
	used      bool
}

// scanDirectives extracts every //lint:allow directive from a loaded
// package. The module's retained sources decide whether a directive
// shares its line with code (suppressing that line) or stands alone
// (suppressing the next line).
func scanDirectives(m *Module, pkg *Package) []*directive {
	var out []*directive
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other //lint:allowX token, not ours
				}
				pos := m.Fset.Position(c.Pos())
				d := &directive{
					file:   m.Rel(pos.Filename),
					line:   pos.Line,
					target: pos.Line,
				}
				d.pos = Diagnostic{File: d.file, Line: pos.Line, Col: pos.Column, Check: "directive"}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.malformed = "missing check name and reason (want //lint:allow <check> <reason>)"
				case len(fields) == 1:
					d.check = fields[0]
					d.malformed = "missing reason (want //lint:allow <check> <reason>)"
				default:
					d.check = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				if standsAlone(m.Source(pos.Filename), pos.Line, pos.Column) {
					d.target = pos.Line + 1
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// standsAlone reports whether the comment starting at (line, col) has
// nothing but whitespace before it on its line, i.e. it is a
// standalone directive that applies to the following line.
func standsAlone(src []byte, line, col int) bool {
	if src == nil {
		return false
	}
	lines := bytes.Split(src, []byte("\n"))
	if line-1 >= len(lines) || col < 1 {
		return false
	}
	prefix := lines[line-1]
	if col-1 < len(prefix) {
		prefix = prefix[:col-1]
	}
	return len(bytes.TrimSpace(prefix)) == 0
}

// applyDirectives drops findings suppressed by a directive (marking
// the directive used) and returns the survivors. Only checks named in
// ran — the analyzers that actually examined the package — are
// eligible, so a directive can never "suppress" a check that was
// skipped for its package.
func applyDirectives(diags []Diagnostic, directives []*directive, ran map[string]bool) []Diagnostic {
	kept := diags[:0]
	for _, diag := range diags {
		suppressed := false
		for _, d := range directives {
			if d.malformed == "" && ran[d.check] && d.check == diag.Check &&
				d.file == diag.File && d.target == diag.Line {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	return kept
}

// directiveFindings reports malformed, unknown-check, and stale
// directives as pseudo-check "directive" diagnostics. known is the set
// of check names in the configured suite; ran is the subset that
// actually examined the directive's package (a directive for a check
// that was package-skipped is left alone rather than called stale).
func directiveFindings(directives []*directive, known, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range directives {
		diag := d.pos
		switch {
		case d.malformed != "":
			diag.Message = "malformed directive: " + d.malformed
		case !known[d.check]:
			diag.Message = fmt.Sprintf("directive names unknown check %q", d.check)
		case ran[d.check] && !d.used:
			diag.Message = fmt.Sprintf(
				"stale directive: //lint:allow %s no longer suppresses any finding on line %d; delete it",
				d.check, d.target)
		default:
			continue
		}
		out = append(out, diag)
	}
	return out
}
