package analysis

// Native fuzz target for the directive grammar. The two parsers —
// //lint:allow suppressions and //minelint: annotations — sit on every
// comment of every analyzed file, so they must never panic and must
// uphold their structural contracts on arbitrary input. The committed
// corpus under testdata/fuzz/FuzzDirectiveParser seeds the interesting
// boundary shapes (near-miss prefixes, tabs, empty verbs, unicode).

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func FuzzDirectiveParser(f *testing.F) {
	seeds := []string{
		"//lint:allow determinism seeded telemetry clock",
		"//lint:allow errflow",
		"//lint:allow",
		"//lint:allowX not a directive",
		"//lint:allow\tfloateq\ttab separated reason",
		"//minelint:hotpath",
		"//minelint:hotpath keep the sweep allocation-free",
		"//minelint:",
		"//minelint:hotpth typo",
		"// plain comment",
		"//lint:allow nopanic reason with //minelint:hotpath inside",
		"//minelint:hotpath\t note after tab",
		"//lint:allow métricas unicode check name",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		check, reason, malformed, ok := parseAllowDirective(text)
		wantOK := strings.HasPrefix(text, directivePrefix) &&
			(len(text) == len(directivePrefix) ||
				text[len(directivePrefix)] == ' ' || text[len(directivePrefix)] == '\t')
		if ok != wantOK {
			t.Fatalf("parseAllowDirective(%q) ok = %v, want %v", text, ok, wantOK)
		}
		if !ok && (check != "" || reason != "" || malformed != "") {
			t.Fatalf("parseAllowDirective(%q): non-directive returned content %q %q %q",
				text, check, reason, malformed)
		}
		if ok {
			if malformed == "" && (check == "" || reason == "") {
				t.Fatalf("parseAllowDirective(%q): well-formed but check=%q reason=%q",
					text, check, reason)
			}
			if strings.ContainsAny(check, " \t\n") {
				t.Fatalf("parseAllowDirective(%q): check %q contains whitespace", text, check)
			}
			if utf8.ValidString(text) && !strings.Contains(text, check) {
				t.Fatalf("parseAllowDirective(%q): check %q not a substring of input", text, check)
			}
		}

		verb, note, mok := parseMinelintDirective(text)
		if wantMOK := strings.HasPrefix(text, minelintPrefix); mok != wantMOK {
			t.Fatalf("parseMinelintDirective(%q) ok = %v, want %v", text, mok, wantMOK)
		}
		if !mok && (verb != "" || note != "") {
			t.Fatalf("parseMinelintDirective(%q): non-directive returned %q %q", text, verb, note)
		}
		if mok {
			if strings.ContainsAny(verb, " \t") {
				t.Fatalf("parseMinelintDirective(%q): verb %q contains whitespace", text, verb)
			}
			if !strings.HasPrefix(strings.TrimPrefix(text, minelintPrefix), verb) {
				t.Fatalf("parseMinelintDirective(%q): verb %q is not the text after the colon",
					text, verb)
			}
			if note != strings.TrimSpace(note) {
				t.Fatalf("parseMinelintDirective(%q): note %q not trimmed", text, note)
			}
		}

		// Both parsers are pure: a second call must agree exactly.
		c2, r2, m2, ok2 := parseAllowDirective(text)
		if c2 != check || r2 != reason || m2 != malformed || ok2 != ok {
			t.Fatalf("parseAllowDirective(%q) is not deterministic", text)
		}
		v2, n2, mok2 := parseMinelintDirective(text)
		if v2 != verb || n2 != note || mok2 != mok {
			t.Fatalf("parseMinelintDirective(%q) is not deterministic", text)
		}
	})
}
