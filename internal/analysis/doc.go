// Package analysis is the repository's static-analysis suite: a
// stdlib-only (go/ast, go/parser, go/token, go/types) collection of
// repo-specific analyzers plus the shared driver that loads packages,
// runs the analyzers, and applies suppression directives. It exists to
// pin *mechanically* the invariants the test suite pins dynamically —
// above all the byte-identical determinism contract of the
// Stackelberg/GNEP solvers (a future call to time.Now or the global
// math/rand source inside a solver would silently break reproducibility
// long before a golden test caught it).
//
// The suite ships four checks (see DESIGN.md §8 for the full policy):
//
//   - determinism: no wall-clock reads, no global math/rand source, no
//     time-seeded RNG construction, no output emitted directly from a
//     map iteration, in any solver or experiment package.
//   - nopanic: no panic in non-test library code outside functions
//     whose doc comment documents the panic as an invariant violation.
//   - floateq: no ==/!= between floating-point operands outside named
//     epsilon helpers (exact comparisons against the zero constant,
//     ±Inf sentinels, and x != x NaN probes are allowed).
//   - exporteddoc: every exported declaration carries a doc comment
//     (the ported lint_test.go walker).
//
// Findings are suppressed either package-wide (the suite's
// PackageSkips table — e.g. obs/parallel/sim may read the wall clock
// for telemetry) or per line with a directive:
//
//	//lint:allow <check> <reason>
//
// placed at the end of the offending line or alone on the line
// directly above it. The reason is mandatory, the directive suppresses
// exactly one check on exactly one line, and the driver flags stale
// directives that no longer suppress anything, so allowlists cannot
// rot silently.
//
// The suite runs as `go run ./cmd/minelint ./...` (CI) and as the
// TestMinelint gate in the root package (tier-1).
package analysis
