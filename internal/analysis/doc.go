// Package analysis is the repository's static-analysis suite: a
// stdlib-only (go/ast, go/parser, go/token, go/types) collection of
// repo-specific analyzers plus the shared driver that loads packages,
// runs the analyzers, and applies suppression directives. It exists to
// pin *mechanically* the invariants the test suite pins dynamically —
// above all the byte-identical determinism contract of the
// Stackelberg/GNEP solvers (a future call to time.Now or the global
// math/rand source inside a solver would silently break reproducibility
// long before a golden test caught it).
//
// The suite ships eight analyzers plus the directive pseudo-check
// (see DESIGN.md §8 for the full policy and §13 for the call-graph
// machinery):
//
//   - determinism: no wall-clock reads, no global math/rand source, no
//     time-seeded RNG construction, no output emitted directly from a
//     map iteration, in any solver or experiment package — enforced
//     transitively: an exported function reaching such a sink through
//     the module call graph is a finding with its full call chain.
//   - nopanic: no panic in non-test library code outside functions
//     whose doc comment documents the panic as an invariant violation;
//     also transitive from exported functions.
//   - floateq: no ==/!= between floating-point operands outside named
//     epsilon helpers (exact comparisons against the zero constant,
//     ±Inf sentinels, and x != x NaN probes are allowed).
//   - exporteddoc: every exported declaration carries a doc comment
//     (the ported lint_test.go walker).
//   - metricname: literal metric names passed to the obs recording
//     methods follow the subsystem.name_unit convention.
//   - errflow: no discarded error results, no error-returning calls as
//     bare statements, no err variable overwritten before it is read.
//   - concurrency: go statements, raw channel construction, and sync
//     primitive ownership confined to the approved concurrency
//     packages (internal/parallel, internal/obs, internal/population,
//     internal/serve).
//   - hotalloc: functions annotated //minelint:hotpath must not
//     allocate (append, make, map literals, closures) inside loops,
//     transitively through static and interface calls to depth 3.
//
// The call graph behind the transitive checks (callgraph.go) resolves
// static calls exactly, fans interface calls out to every satisfying
// module type, and treats function-value references as conservative
// edges from the referencing function.
//
// Findings are suppressed either package-wide (the suite's
// PackageSkips table — e.g. obs/parallel/sim may read the wall clock
// for telemetry) or per line with a directive:
//
//	//lint:allow <check> <reason>
//
// placed at the end of the offending line or alone on the line
// directly above it. The reason is mandatory, the directive suppresses
// exactly one check on exactly one line, and the driver flags stale
// directives that no longer suppress anything, so allowlists cannot
// rot silently.
//
// The suite runs as `go run ./cmd/minelint ./...` (CI, with -json and
// -sarif output modes) and as the TestMinelint gate in the root
// package (tier-1); BenchmarkMinelintModule logs the wall time of a
// full-module sweep.
package analysis
