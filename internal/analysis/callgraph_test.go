package analysis

import (
	"go/types"
	"strings"

	"testing"
)

// TestCallGraphFixtureTransitiveDeterminism pins the transitive
// determinism findings over every edge kind — static cross-package
// calls, interface fan-out, method values, recursion cycles — against
// the fixture's want annotations.
func TestCallGraphFixtureTransitiveDeterminism(t *testing.T) {
	testFixture(t, "callgraph", false, Determinism())
}

// TestTransitiveFindingCarriesChain pins the machine-readable chain
// attached to a transitive finding: one frame per function with the
// call-site position and edge kind, ending at the sink.
func TestTransitiveFindingCarriesChain(t *testing.T) {
	diags := fixtureDiags(t, "callgraph", false, Determinism())
	var entry *Diagnostic
	for i := range diags {
		if len(diags[i].Chain) > 0 && diags[i].Chain[0].Func == "callgraph.Entry" {
			entry = &diags[i]
			break
		}
	}
	if entry == nil {
		t.Fatalf("no transitive finding rooted at callgraph.Entry in %v", diags)
	}
	if len(entry.Chain) != 2 {
		t.Fatalf("Entry chain = %+v, want 2 frames", entry.Chain)
	}
	if k := entry.Chain[0].Kind; k != string(EdgeStatic) {
		t.Errorf("Entry chain[0].Kind = %q, want %q", k, EdgeStatic)
	}
	if f := entry.Chain[1]; f.Func != "sub.Leaf" || f.Kind != "" {
		t.Errorf("Entry chain[1] = %+v, want sub.Leaf with no edge kind", f)
	}
	if f := entry.Chain[1].File; !strings.HasSuffix(f, "testdata/callgraph/sub/sub.go") {
		t.Errorf("Entry sink frame file = %q, want the sub package source", f)
	}
	// The finding itself is reported at the root's outgoing call site.
	if !strings.HasSuffix(entry.File, "testdata/callgraph/callgraph.go") {
		t.Errorf("finding reported in %q, want the root's file", entry.File)
	}
	if entry.Line != entry.Chain[0].Line {
		t.Errorf("finding line %d != chain[0] call-site line %d", entry.Line, entry.Chain[0].Line)
	}
}

// loadCallgraphFixture loads the callgraph fixture package and its sub
// package under a fresh module loader.
func loadCallgraphFixture(t *testing.T) (*Module, *Package, *Package) {
	t.Helper()
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	main, err := mod.CheckDir("testdata/callgraph", mod.Path+"/internal/analysis/testdata/callgraph")
	if err != nil {
		t.Fatalf("CheckDir(callgraph): %v", err)
	}
	sub, err := mod.Load(mod.Path + "/internal/analysis/testdata/callgraph/sub")
	if err != nil {
		t.Fatalf("Load(sub): %v", err)
	}
	return mod, main, sub
}

// edgeSet renders a function's outgoing edges as "kind callee" strings.
func edgeSet(g *CallGraph, name string) map[string]bool {
	fn := findFunc(g, name)
	set := make(map[string]bool)
	if fn == nil {
		return set
	}
	for _, e := range g.CalleesOf(fn) {
		set[string(e.Kind)+" "+FuncDisplayName(e.Callee)] = true
	}
	return set
}

// findFunc locates a graph node by its display name.
func findFunc(g *CallGraph, name string) *types.Func {
	for _, fn := range g.Functions() {
		if FuncDisplayName(fn) == name {
			return fn
		}
	}
	return nil
}

// TestBuildCallGraphEdgeKinds asserts the exact resolution of each
// fixture call shape: static cross-package edges, interface dispatch
// fan-out to every satisfying implementation, method-value reference
// edges, and self/mutual recursion edges.
func TestBuildCallGraphEdgeKinds(t *testing.T) {
	mod, main, sub := loadCallgraphFixture(t)
	g := BuildCallGraph(mod, []*Package{main, sub})

	cases := []struct {
		from string
		want []string // "kind callee" entries that must be present
		all  bool     // when true, want is the complete edge set
	}{
		{from: "callgraph.Entry", want: []string{"static sub.Leaf"}, all: true},
		{from: "callgraph.CleanEntry", want: []string{"static sub.Clean"}, all: true},
		{from: "callgraph.RunTicker", want: []string{
			"interface (callgraph.clockTicker).Tick",
			"interface (callgraph.pureTicker).Tick",
		}, all: true},
		{from: "callgraph.MethodValue", want: []string{"funcvalue (callgraph.clockTicker).Tick"}, all: true},
		{from: "callgraph.Recurse", want: []string{
			"static callgraph.Recurse",
			"static callgraph.cycleLeaf",
		}, all: true},
		{from: "callgraph.pingA", want: []string{"static sub.Leaf", "static callgraph.pingB"}, all: true},
		{from: "callgraph.pingB", want: []string{"static callgraph.pingA"}, all: true},
	}
	for _, tc := range cases {
		got := edgeSet(g, tc.from)
		for _, w := range tc.want {
			if !got[w] {
				t.Errorf("%s: missing edge %q (have %v)", tc.from, w, got)
			}
		}
		if tc.all && len(got) != len(tc.want) {
			t.Errorf("%s: edge set %v, want exactly %v", tc.from, got, tc.want)
		}
	}
}

// TestReverseReachTerminatesOnCycles pins the reverse-BFS distances
// through the fixture's self- and mutual-recursion cycles.
func TestReverseReachTerminatesOnCycles(t *testing.T) {
	mod, main, sub := loadCallgraphFixture(t)
	g := BuildCallGraph(mod, []*Package{main, sub})
	leaf := findFunc(g, "sub.Leaf")
	if leaf == nil {
		t.Fatal("sub.Leaf not in graph")
	}
	dist, via := g.ReverseReach([]*types.Func{leaf}, nil)

	wantDist := map[string]int{
		"sub.Leaf":        0,
		"callgraph.Entry": 1,
		"callgraph.pingA": 1,
		"callgraph.pingB": 2,
		"callgraph.Cycle": 2,
	}
	for name, want := range wantDist {
		fn := findFunc(g, name)
		if fn == nil {
			t.Fatalf("%s not in graph", name)
		}
		got, ok := dist[fn]
		if !ok || got != want {
			t.Errorf("dist[%s] = %d (reached=%v), want %d", name, got, ok, want)
		}
	}
	// Functions with no path to the sink must stay unreached.
	for _, name := range []string{"callgraph.CleanEntry", "sub.Clean", "callgraph.Recurse"} {
		fn := findFunc(g, name)
		if fn == nil {
			t.Fatalf("%s not in graph", name)
		}
		if d, ok := dist[fn]; ok {
			t.Errorf("dist[%s] = %d, want unreached", name, d)
		}
	}
	// via edges walk back to the sink.
	cycle := findFunc(g, "callgraph.Cycle")
	cur := cycle
	for steps := 0; dist[cur] > 0; steps++ {
		if steps > 10 {
			t.Fatal("via chain from Cycle did not terminate")
		}
		cur = via[cur].Callee
	}
	if cur != leaf {
		t.Errorf("via chain from Cycle ends at %s, want sub.Leaf", FuncDisplayName(cur))
	}
}
