package analysis

import (
	"go/ast"
	"go/types"
)

// approvedConcurrencyNote names the packages allowed to own
// concurrency primitives, for diagnostic messages.
const approvedConcurrencyNote = "internal/parallel, internal/obs, internal/population, internal/serve"

// Concurrency returns the analyzer confining concurrency ownership to
// the approved packages (the deterministic pool in internal/parallel,
// the observability servers in internal/obs, the streaming
// population layer in internal/population, and the serving daemon in
// internal/serve — expressed as the check's package skips). Everywhere
// else it flags:
//
//   - `go` statements — fan-out must ride internal/parallel so results
//     stay byte-identical at any worker count;
//   - raw channel construction (`make(chan ...)`);
//   - sync/sync-atomic primitive ownership: naming a sync type
//     (sync.Mutex, sync.Once, ...) in a declaration, or calling a
//     sync package-level function.
//
// Using a sync value someone else owns (calling Lock/Unlock on a field
// of an approved type) is not flagged — the check polices ownership,
// not use.
func Concurrency() *Analyzer {
	return &Analyzer{
		Name: "concurrency",
		Doc: "confines go statements, raw channel construction, and sync primitive " +
			"ownership to the approved concurrency packages (" + approvedConcurrencyNote + ")",
		Run: runConcurrency,
	}
}

func runConcurrency(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(node.Pos(),
					"go statement outside the approved concurrency packages (%s); "+
						"fan out through internal/parallel so output stays deterministic",
					approvedConcurrencyNote)
			case *ast.CallExpr:
				checkChanMake(pass, node)
			case *ast.SelectorExpr:
				checkSyncUse(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkChanMake flags make(chan ...) — raw channel plumbing belongs to
// the approved concurrency packages.
func checkChanMake(pass *Pass, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return
	}
	if _, builtin := pass.Info.Uses[id].(*types.Builtin); !builtin {
		return
	}
	t := pass.Info.TypeOf(call)
	if t == nil {
		return
	}
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		pass.Reportf(call.Pos(),
			"raw channel constructed outside the approved concurrency packages (%s); "+
				"use internal/parallel for fan-out and collection", approvedConcurrencyNote)
	}
}

// checkSyncUse flags qualified references to sync / sync/atomic types
// and package-level functions (sync.Mutex fields, sync.OnceFunc calls,
// ...). Method calls on sync values are deliberately not flagged.
func checkSyncUse(pass *Pass, sel *ast.SelectorExpr) {
	reportSyncObject(pass, sel.Sel, pass.Info.Uses[sel.Sel])
}

// reportSyncObject flags an identifier resolving to a sync or
// sync/atomic type name or package-level function.
func reportSyncObject(pass *Pass, id *ast.Ident, obj types.Object) {
	if obj == nil || obj.Pkg() == nil {
		return
	}
	path := obj.Pkg().Path()
	if path != "sync" && path != "sync/atomic" {
		return
	}
	switch o := obj.(type) {
	case *types.TypeName:
		pass.Reportf(id.Pos(),
			"%s.%s primitive owned outside the approved concurrency packages (%s); "+
				"move the synchronization into an approved package or record a rationale",
			obj.Pkg().Name(), obj.Name(), approvedConcurrencyNote)
	case *types.Func:
		if sig, ok := o.Type().(*types.Signature); ok && sig.Recv() == nil {
			pass.Reportf(id.Pos(),
				"call to %s.%s outside the approved concurrency packages (%s); "+
					"move the synchronization into an approved package or record a rationale",
				obj.Pkg().Name(), obj.Name(), approvedConcurrencyNote)
		}
	}
}
