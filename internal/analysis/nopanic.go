package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic returns the analyzer enforcing the repository's error
// discipline: library code returns errors, it does not panic. A panic
// is tolerated only inside a function whose doc comment documents the
// panic as an invariant violation (the word "panic" must appear in the
// doc), which is the convention for must-style helpers. The module
// half additionally flags exported functions from which an
// undocumented panic is reachable through the call graph, with the
// full chain.
func NoPanic() *Analyzer {
	return &Analyzer{
		Name: "nopanic",
		Doc: "forbids panic in non-test library code unless the enclosing function's " +
			"doc comment documents the panic as an invariant violation; exported " +
			"functions must not transitively reach an undocumented panic",
		Run:       runNoPanic,
		RunModule: runNoPanicModule,
	}
}

func runNoPanic(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && docMentionsPanic(fd.Doc) {
				continue // documented invariant-violation helper
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if _, builtin := pass.Info.Uses[id].(*types.Builtin); builtin {
						pass.Reportf(call.Pos(),
							"panic in library code: return an error, or document the panic "+
								"as an invariant violation in the function's doc comment")
					}
				}
				return true
			})
		}
	}
	return nil
}

// docMentionsPanic reports whether a doc comment documents panicking
// behavior (contains the word "panic" in any casing or inflection).
func docMentionsPanic(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(strings.ToLower(doc.Text()), "panic")
}
