package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the check that produced it,
// and a human-readable message. The JSON field names are the CLI's
// machine-readable contract (cmd/minelint -json).
type Diagnostic struct {
	// File is the path of the offending file, relative to the module
	// root when possible.
	File string `json:"file"`
	// Line is the 1-based source line of the finding.
	Line int `json:"line"`
	// Col is the 1-based source column of the finding.
	Col int `json:"col"`
	// Check names the analyzer (or pseudo-check, e.g. "directive")
	// that produced the finding; it is the name used in //lint:allow.
	Check string `json:"check"`
	// Message explains the finding and how to fix or suppress it.
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional
// file:line:col: check: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one static check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name is the check's identifier, used in //lint:allow directives
	// and in diagnostics.
	Name string
	// Doc is a one-paragraph description of what the check enforces.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Fset maps token positions back to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed (non-test) files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression facts for the package.
	Info *types.Info
	// ImportPath is the package's import path within the module.
	ImportPath string

	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a finding at pos for this pass's analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// sortDiagnostics orders findings by file, line, column, check, and
// message so suite output is deterministic regardless of analyzer or
// package iteration order.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
