package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the check that produced it,
// and a human-readable message. The JSON field names are the CLI's
// machine-readable contract (cmd/minelint -json).
type Diagnostic struct {
	// File is the path of the offending file, relative to the module
	// root when possible.
	File string `json:"file"`
	// Line is the 1-based source line of the finding.
	Line int `json:"line"`
	// Col is the 1-based source column of the finding.
	Col int `json:"col"`
	// Check names the analyzer (or pseudo-check, e.g. "directive")
	// that produced the finding; it is the name used in //lint:allow.
	Check string `json:"check"`
	// Message explains the finding and how to fix or suppress it.
	Message string `json:"message"`
	// Chain, present only on transitive findings, is the offending
	// call chain from the reported function down to the sink, one
	// frame per function with the call site it continues through.
	Chain []Frame `json:"chain,omitempty"`
}

// Frame is one step of a transitive finding's call chain. File/Line
// locate the call site (or, for the final frame, the sink itself);
// Kind is the resolution of the edge leaving this frame (static,
// interface, funcvalue), empty on the final frame.
type Frame struct {
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
	Kind string `json:"kind,omitempty"`
}

// String renders the diagnostic in the conventional
// file:line:col: check: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one static check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name is the check's identifier, used in //lint:allow directives
	// and in diagnostics.
	Name string
	// Doc is a one-paragraph description of what the check enforces.
	Doc string
	// Run executes the check over one package. Nil for module-only
	// analyzers (e.g. hotalloc).
	Run func(*Pass) error
	// RunModule, when non-nil, executes the check's whole-module
	// (interprocedural) half over the call graph, after every
	// per-package pass has run.
	RunModule func(*ModulePass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Fset maps token positions back to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed (non-test) files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression facts for the package.
	Info *types.Info
	// ImportPath is the package's import path within the module.
	ImportPath string

	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a finding at pos for this pass's analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ModulePass carries one analyzer's whole-module view: the call graph
// over every loaded package, plus the subset of pattern-selected
// packages the check actually examines.
type ModulePass struct {
	// Mod is the loaded module.
	Mod *Module
	// Graph is the call graph over every package the loader has seen
	// (analyzed packages and their module-internal dependencies).
	Graph *CallGraph
	// Analyzed are the pattern-selected packages this check examines,
	// with its package-level skips already removed, in import-path
	// order. Findings may only be reported inside these packages.
	Analyzed []*Package

	analyzer *Analyzer
	skipRel  func(rel string) bool
	allowed  map[string]map[int]bool // file -> target line with //lint:allow for this check
	report   func(Diagnostic)
}

// Reportf records a module-level finding at pos, with an optional call
// chain attached.
func (p *ModulePass) Reportf(pos token.Pos, chain []Frame, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	p.report(Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
		Chain:   chain,
	})
}

// Skipped reports whether the check's package-level allowlist excludes
// pkg: skipped packages are neither traversed nor scanned for sinks.
func (p *ModulePass) Skipped(pkg *Package) bool {
	return p.skipRel(relImportPath(p.Mod, pkg.ImportPath))
}

// Allowed reports whether a //lint:allow directive for this check
// targets the source line of pos (anywhere in the module), i.e. the
// site has a recorded rationale and must not count as a sink.
func (p *ModulePass) Allowed(pos token.Pos) bool {
	position := p.Mod.Fset.Position(pos)
	return p.allowed[p.Mod.Rel(position.Filename)][position.Line]
}

// FrameAt builds a chain frame for fn whose edge continues at pos.
func (p *ModulePass) FrameAt(fn *types.Func, pos token.Pos, kind EdgeKind) Frame {
	position := p.Mod.Fset.Position(pos)
	return Frame{
		Func: FuncDisplayName(fn),
		File: p.Mod.Rel(position.Filename),
		Line: position.Line,
		Kind: string(kind),
	}
}

// sortDiagnostics orders findings by file, line, column, check, and
// message so suite output is deterministic regardless of analyzer or
// package iteration order.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
