package analysis

import (
	"go/ast"
)

// ExportedDoc returns the analyzer enforcing the repository's go-doc
// discipline: every exported declaration in non-test code carries a
// doc comment. This is the former root lint_test.go walker, ported
// into the suite so all checks share one driver and one directive
// syntax.
func ExportedDoc() *Analyzer {
	return &Analyzer{
		Name: "exporteddoc",
		Doc:  "requires a doc comment on every exported declaration in non-test code",
		Run:  runExportedDoc,
	}
}

func runExportedDoc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc.Text() == "" {
					pass.Reportf(d.Name.Pos(), "exported func %s lacks a doc comment", d.Name.Name)
				}
			case *ast.GenDecl:
				groupDoc := d.Doc.Text()
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && groupDoc == "" && s.Doc.Text() == "" && s.Comment.Text() == "" {
							pass.Reportf(s.Name.Pos(), "exported type %s lacks a doc comment", s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() && groupDoc == "" && s.Doc.Text() == "" && s.Comment.Text() == "" {
								pass.Reportf(name.Pos(), "exported %s lacks a doc comment", name.Name)
							}
						}
					}
				}
			}
		}
	}
	return nil
}
