package analysis

import "testing"

func TestDeterminismFixture(t *testing.T) {
	testFixture(t, "determinism", false, Determinism())
}
