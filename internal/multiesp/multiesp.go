// Package multiesp extends the paper's model to MULTIPLE edge service
// providers — the natural next step the single-ESP game suggests: K edge
// providers with distinct prices and reliabilities compete alongside the
// cloud for the miners' budgets.
//
// The connected-mode winning probability generalizes Eq. 9 by the same
// law of total expectation: ESP k serves a request locally with
// probability h_k and transfers it otherwise, so with e_i = (e_i^1, …,
// e_i^K) and total edge demand E = Σ_j Σ_k e_j^k,
//
//	W_i = (1−β)·s_i/S + β·(Σ_k h_k·e_i^k)/E,
//
// which reduces exactly to Eq. 9 at K = 1. Each miner maximizes
// R·W_i − Σ_k P_k·e_i^k − P_c·c_i over its budget polytope; the
// equilibrium is computed by damped best-response iteration with
// multi-start projected gradient ascent (the fork-bonus term is
// linear-fractional and only piecewise concave for K ≥ 2, so single-start
// ascent is not sufficient).
package multiesp

import (
	"fmt"
	"math"

	"minegame/internal/numeric"
)

// ESP is one edge provider's offer.
type ESP struct {
	Price float64 // unit price P_k
	H     float64 // satisfy probability h_k in [0, 1]
}

// Config describes a multi-ESP mining game instance.
type Config struct {
	N       int     // miners
	Budget  float64 // common budget (homogeneous population)
	Reward  float64 // R
	Beta    float64 // fork rate β
	ESPs    []ESP   // K ≥ 1 edge providers
	PriceC  float64 // CSP unit price
	Damping float64 // best-response damping (default 0.5)
	MaxIter int     // best-response sweeps (default 400)
	Tol     float64 // convergence threshold (default 1e-6)
}

// Validate reports configuration errors. Every scalar is checked in its
// affirmative range (¬(x > 0) rather than x ≤ 0) so NaN inputs are
// rejected instead of flowing into the best-response arithmetic, and
// infinities are refused explicitly.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("multiesp: need at least 2 miners, got %d", c.N)
	}
	if !(c.Budget > 0) || !(c.Reward > 0) || !(c.PriceC > 0) ||
		math.IsInf(c.Budget, 0) || math.IsInf(c.Reward, 0) || math.IsInf(c.PriceC, 0) {
		return fmt.Errorf("multiesp: budget %g, reward %g and cloud price %g must be positive and finite", c.Budget, c.Reward, c.PriceC)
	}
	if !(c.Beta >= 0 && c.Beta < 1) {
		return fmt.Errorf("multiesp: beta %g outside [0, 1)", c.Beta)
	}
	if len(c.ESPs) == 0 {
		return fmt.Errorf("multiesp: need at least one edge provider")
	}
	for k, e := range c.ESPs {
		if !(e.Price > 0) || math.IsInf(e.Price, 0) {
			return fmt.Errorf("multiesp: ESP %d price %g must be positive and finite", k, e.Price)
		}
		if !(e.H >= 0 && e.H <= 1) {
			return fmt.Errorf("multiesp: ESP %d satisfy probability %g outside [0, 1]", k, e.H)
		}
	}
	return nil
}

// dims returns the strategy dimension: K edge coordinates plus cloud.
func (c Config) dims() int { return len(c.ESPs) + 1 }

// prices returns the full price vector (P_1, …, P_K, P_c).
func (c Config) prices() numeric.Vec {
	p := make(numeric.Vec, c.dims())
	for k, e := range c.ESPs {
		p[k] = e.Price
	}
	p[len(c.ESPs)] = c.PriceC
	return p
}

// sumInto overwrites totals with the per-coordinate profile sums — the
// O(N·D) pass the iterating solvers run once per sweep instead of once
// per miner.
func sumInto(totals numeric.Vec, profile []numeric.Vec) {
	for d := range totals {
		totals[d] = 0
	}
	for _, x := range profile {
		for d := range totals {
			totals[d] += x[d]
		}
	}
}

// othersInto fills dst with totals − own, clamping the tiny negative
// residues incremental totals can carry so aggregates stay non-negative.
func othersInto(dst, totals, own numeric.Vec) {
	for d := range dst {
		v := totals[d] - own[d]
		if v < 0 {
			v = 0
		}
		dst[d] = v
	}
}

const tiny = 1e-12

// WinProb evaluates the K-ESP generalization of Eq. 9 for a miner
// playing own against the aggregate of the others.
func (c Config) WinProb(own numeric.Vec, others numeric.Vec) float64 {
	K := len(c.ESPs)
	var sOwn, sOth, eOwn, eOth, bonus float64
	for d := 0; d < K; d++ {
		eOwn += own[d]
		eOth += others[d]
		bonus += c.ESPs[d].H * own[d]
	}
	sOwn = eOwn + own[K]
	sOth = eOth + others[K]
	s := sOwn + sOth
	if s <= tiny {
		return 0
	}
	w := (1 - c.Beta) * sOwn / s
	if e := eOwn + eOth; e > tiny {
		w += c.Beta * bonus / e
	}
	return w
}

// Utility is R·W − prices·own.
func (c Config) Utility(own, others numeric.Vec) float64 {
	return c.Reward*c.WinProb(own, others) - c.prices().Dot(own)
}

// grad is the analytic utility gradient:
//
//	∂U/∂e^k = R[(1−β)·S_{-i}/S² + β(h_k·E − Σ_j h_j e_i^j)/E²] − P_k
//	∂U/∂c   = R[(1−β)·S_{-i}/S²] − P_c
func (c Config) grad(own, others numeric.Vec) numeric.Vec {
	K := len(c.ESPs)
	var eOwn, eOth, bonus float64
	for d := 0; d < K; d++ {
		eOwn += own[d]
		eOth += others[d]
		bonus += c.ESPs[d].H * own[d]
	}
	sOth := others.Sum()
	s := own.Sum() + sOth
	if s <= tiny {
		s = tiny
	}
	shared := c.Reward * (1 - c.Beta) * sOth / (s * s)
	e := eOwn + eOth
	if e <= tiny {
		e = tiny
	}
	g := make(numeric.Vec, c.dims())
	for d := 0; d < K; d++ {
		g[d] = shared - c.ESPs[d].Price
		if c.Beta > 0 {
			g[d] += c.Reward * c.Beta * (c.ESPs[d].H*e - bonus) / (e * e)
		}
	}
	g[K] = shared - c.PriceC
	return g
}

// BestResponse maximizes a miner's utility against the aggregate others,
// by multi-start projected gradient ascent over the budget polytope.
// Hints (e.g. the current strategy) warm-start the search.
func (c Config) BestResponse(others numeric.Vec, hints ...numeric.Vec) numeric.Vec {
	pv := c.prices()
	k := numeric.BudgetPolytope{Prices: pv, Budget: c.Budget}
	// pv is hoisted so the objective does not re-build the price vector
	// on every ascent evaluation.
	f := func(x numeric.Vec) float64 { return c.Reward*c.WinProb(x, others) - pv.Dot(x) }
	grad := func(x numeric.Vec) numeric.Vec { return c.grad(x, others) }

	dims := c.dims()
	starts := make([]numeric.Vec, 0, len(hints)+dims+2)
	starts = append(starts, hints...)
	center := make(numeric.Vec, dims)
	for d, p := range pv {
		center[d] = c.Budget / (2 * float64(dims) * p)
	}
	starts = append(starts, center)
	for d, p := range pv {
		corner := make(numeric.Vec, dims)
		corner[d] = c.Budget / p
		starts = append(starts, corner)
	}
	best := make(numeric.Vec, dims)
	bestV := f(best)
	for _, s := range starts {
		res := numeric.ProjectedGradientAscentVec(f, grad, k, s, 400, 1e-11)
		if res.Value > bestV {
			best, bestV = res.X, res.Value
		}
	}
	return best
}

// Equilibrium is a solved multi-ESP miner subgame.
type Equilibrium struct {
	Requests []numeric.Vec // per miner: (e^1, …, e^K, c)
	// Demands aggregates per coordinate: K edge demands then cloud.
	Demands    numeric.Vec
	Utilities  []float64
	WinProbs   []float64
	Iterations int
	Converged  bool
}

// Solve computes the miner equilibrium by damped Gauss–Seidel
// best-response iteration.
func Solve(cfg Config) (Equilibrium, error) {
	if err := cfg.Validate(); err != nil {
		return Equilibrium{}, err
	}
	damping := cfg.Damping
	if damping <= 0 || damping > 1 {
		damping = 0.5
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 400
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	dims := cfg.dims()
	profile := make([]numeric.Vec, cfg.N)
	for i := range profile {
		profile[i] = make(numeric.Vec, dims)
		for d, p := range cfg.prices() {
			profile[i][d] = cfg.Budget / (4 * float64(dims) * p)
		}
	}
	eq := Equilibrium{}
	// Running totals make each sweep O(N·D): the per-miner environment is
	// totals − own, delta-updated as miners move and re-summed exactly at
	// every sweep boundary to bound floating-point drift.
	totals := make(numeric.Vec, dims)
	sumInto(totals, profile)
	others := make(numeric.Vec, dims)
	for it := 0; it < maxIter; it++ {
		eq.Iterations = it + 1
		maxDelta := 0.0
		for i := range profile {
			othersInto(others, totals, profile[i])
			next := cfg.BestResponse(others, profile[i])
			blended := profile[i].Scale(1 - damping).Add(next.Scale(damping))
			if d := blended.Sub(profile[i]).Norm(); d > maxDelta {
				maxDelta = d
			}
			for d := range totals {
				totals[d] += blended[d] - profile[i][d]
			}
			profile[i] = blended
		}
		sumInto(totals, profile)
		if maxDelta < tol {
			eq.Converged = true
			break
		}
	}
	eq.Requests = profile
	eq.Demands = make(numeric.Vec, dims)
	eq.Utilities = make([]float64, cfg.N)
	eq.WinProbs = make([]float64, cfg.N)
	sumInto(eq.Demands, profile)
	for i, x := range profile {
		othersInto(others, eq.Demands, x)
		eq.Utilities[i] = cfg.Utility(x, others)
		eq.WinProbs[i] = cfg.WinProb(x, others)
	}
	return eq, nil
}

// Deviation returns the largest unilateral best-response gain at the
// profile — the equilibrium-quality certificate.
func Deviation(cfg Config, profile []numeric.Vec) float64 {
	dims := cfg.dims()
	totals := make(numeric.Vec, dims)
	sumInto(totals, profile)
	others := make(numeric.Vec, dims)
	var worst float64
	for i := range profile {
		othersInto(others, totals, profile[i])
		current := cfg.Utility(profile[i], others)
		dev := cfg.BestResponse(others, profile[i])
		if gain := cfg.Utility(dev, others) - current; gain > worst {
			worst = gain
		}
	}
	return worst
}
