package multiesp

import (
	"math"
	"math/rand"
	"testing"

	"minegame/internal/miner"
	"minegame/internal/numeric"
)

func singleESPConfig() Config {
	return Config{
		N:      5,
		Budget: 200,
		Reward: 1000,
		Beta:   0.2,
		ESPs:   []ESP{{Price: 8, H: 0.7}},
		PriceC: 4,
	}
}

func twoESPConfig() Config {
	cfg := singleESPConfig()
	cfg.ESPs = []ESP{
		{Price: 9, H: 0.9}, // premium edge: reliable but expensive
		{Price: 6, H: 0.4}, // budget edge: cheap but often transfers
	}
	return cfg
}

func TestValidate(t *testing.T) {
	if err := singleESPConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.N = 1 },
		func(c *Config) { c.Budget = 0 },
		func(c *Config) { c.Reward = 0 },
		func(c *Config) { c.Beta = 1 },
		func(c *Config) { c.ESPs = nil },
		func(c *Config) { c.ESPs[0].Price = 0 },
		func(c *Config) { c.ESPs[0].H = 1.5 },
		func(c *Config) { c.PriceC = 0 },
		// NaN passes x <= 0 checks, Inf passes x > 0: both must be caught
		// by the affirmative-range validation (found by fuzzing).
		func(c *Config) { c.Budget = math.NaN() },
		func(c *Config) { c.Reward = math.Inf(1) },
		func(c *Config) { c.Beta = math.NaN() },
		func(c *Config) { c.PriceC = math.NaN() },
		func(c *Config) { c.ESPs[0].Price = math.NaN() },
		func(c *Config) { c.ESPs[0].H = math.NaN() },
	}
	for i, mutate := range mutations {
		cfg := singleESPConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should be invalid", i)
		}
	}
}

// TestWinProbReducesToEq9 checks the K = 1 specialization against the
// single-ESP connected-mode formula for random strategies.
func TestWinProbReducesToEq9(t *testing.T) {
	cfg := singleESPConfig()
	cases := []struct{ e, c, eOth, cOth float64 }{
		{2, 10, 15, 40},
		{0, 5, 3, 20},
		{7, 0, 1, 2},
		{4, 4, 0, 10},
	}
	for _, tc := range cases {
		own := numeric.Vec{tc.e, tc.c}
		others := numeric.Vec{tc.eOth, tc.cOth}
		got := cfg.WinProb(own, others)
		want := miner.WinProbConnected(cfg.Beta, cfg.ESPs[0].H,
			numeric.Point2{E: tc.e, C: tc.c},
			miner.Env{EdgeOthers: tc.eOth, CloudOthers: tc.cOth})
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("case %+v: multi %g != Eq.9 %g", tc, got, want)
		}
	}
}

// TestGradMatchesFiniteDifferences validates the analytic gradient.
func TestGradMatchesFiniteDifferences(t *testing.T) {
	cfg := twoESPConfig()
	others := numeric.Vec{10, 6, 50}
	for _, own := range []numeric.Vec{{2, 3, 15}, {0.5, 8, 2}, {5, 0.2, 30}} {
		got := cfg.grad(own, others)
		fd := numeric.GradVecFiniteDiff(func(x numeric.Vec) float64 {
			return cfg.Utility(x, others)
		}, 1e-5)(own)
		for d := range got {
			if !numeric.AlmostEqual(got[d], fd[d], 1e-4) {
				t.Errorf("own %v dim %d: analytic %g, fd %g", own, d, got[d], fd[d])
			}
		}
	}
}

// TestSolveSingleESPMatchesCoreClosedForm is the key cross-validation:
// the K = 1 multi-ESP solver must land on the paper's closed-form
// connected equilibrium.
func TestSolveSingleESPMatchesCoreClosedForm(t *testing.T) {
	cfg := singleESPConfig()
	eq, err := Solve(cfg)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !eq.Converged {
		t.Fatalf("not converged after %d sweeps", eq.Iterations)
	}
	params := miner.Params{Reward: 1000, Beta: 0.2, H: 0.7, PriceE: 8, PriceC: 4}
	want, err := miner.HomogeneousConnected(params, cfg.N, cfg.Budget)
	if err != nil {
		t.Fatalf("closed form: %v", err)
	}
	for i, x := range eq.Requests {
		if math.Abs(x[0]-want.Request.E) > 5e-3 || math.Abs(x[1]-want.Request.C) > 5e-3 {
			t.Errorf("miner %d: (%g, %g), closed form (%g, %g)",
				i, x[0], x[1], want.Request.E, want.Request.C)
		}
	}
}

func TestSolveTwoESPs(t *testing.T) {
	cfg := twoESPConfig()
	eq, err := Solve(cfg)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !eq.Converged {
		t.Fatalf("not converged after %d sweeps", eq.Iterations)
	}
	// All three demands positive: the premium ESP, the budget ESP and
	// the cloud each capture part of the market at these prices.
	for d, v := range eq.Demands {
		if v <= 0 {
			t.Errorf("demand[%d] = %g, want positive", d, v)
		}
	}
	// Budget feasibility and equilibrium certificate.
	prices := cfg.prices()
	for i, x := range eq.Requests {
		if spend := prices.Dot(x); spend > cfg.Budget+1e-6 {
			t.Errorf("miner %d overspends: %g", i, spend)
		}
	}
	scale := 1.0
	for _, u := range eq.Utilities {
		scale = math.Max(scale, math.Abs(u))
	}
	if dev := Deviation(cfg, eq.Requests); dev > 0.01*scale+0.01 {
		t.Errorf("profitable deviation %g at equilibrium", dev)
	}
}

// TestPriceSubstitution checks the economics: cutting the budget ESP's
// price moves demand toward it and away from the premium ESP.
func TestPriceSubstitution(t *testing.T) {
	base := twoESPConfig()
	eqBase, err := Solve(base)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	cheaper := twoESPConfig()
	cheaper.ESPs[1].Price = 5
	eqCheap, err := Solve(cheaper)
	if err != nil {
		t.Fatalf("cheaper: %v", err)
	}
	if eqCheap.Demands[1] <= eqBase.Demands[1] {
		t.Errorf("budget-ESP demand %g did not grow after its price cut (was %g)",
			eqCheap.Demands[1], eqBase.Demands[1])
	}
	if eqCheap.Demands[0] >= eqBase.Demands[0] {
		t.Errorf("premium-ESP demand %g did not shrink after the rival's price cut (was %g)",
			eqCheap.Demands[0], eqBase.Demands[0])
	}
}

// TestReliabilityPremium checks that a more reliable ESP sustains more
// demand at equal prices.
func TestReliabilityPremium(t *testing.T) {
	cfg := twoESPConfig()
	cfg.ESPs[0] = ESP{Price: 7, H: 0.9}
	cfg.ESPs[1] = ESP{Price: 7, H: 0.3}
	eq, err := Solve(cfg)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if eq.Demands[0] <= eq.Demands[1] {
		t.Errorf("reliable ESP demand %g not above unreliable %g at equal prices",
			eq.Demands[0], eq.Demands[1])
	}
}

func TestSolveInvalidConfig(t *testing.T) {
	cfg := singleESPConfig()
	cfg.N = 0
	if _, err := Solve(cfg); err == nil {
		t.Error("want error")
	}
}

// TestSolveFeasibleEverywhere fuzzes random multi-ESP instances: the
// solver must stay feasible and produce a deviation-certified profile.
func TestSolveFeasibleEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		k := 1 + rng.Intn(3)
		cfg := Config{
			N:      2 + rng.Intn(5),
			Budget: 50 + 250*rng.Float64(),
			Reward: 300 + 1500*rng.Float64(),
			Beta:   0.05 + 0.5*rng.Float64(),
			PriceC: 1 + 4*rng.Float64(),
		}
		for i := 0; i < k; i++ {
			cfg.ESPs = append(cfg.ESPs, ESP{
				Price: cfg.PriceC * (1.05 + 1.5*rng.Float64()),
				H:     0.2 + 0.8*rng.Float64(),
			})
		}
		eq, err := Solve(cfg)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg, err)
		}
		prices := cfg.prices()
		for i, x := range eq.Requests {
			for d, v := range x {
				if v < -1e-9 {
					t.Fatalf("trial %d: miner %d dim %d negative (%g)", trial, i, d, v)
				}
			}
			if spend := prices.Dot(x); spend > cfg.Budget*(1+1e-6) {
				t.Fatalf("trial %d: miner %d overspends %g > %g", trial, i, spend, cfg.Budget)
			}
		}
		if !eq.Converged {
			continue // oscillatory corner races may hit MaxIter; skip the certificate
		}
		scale := 1.0
		for _, u := range eq.Utilities {
			scale = math.Max(scale, math.Abs(u))
		}
		if dev := Deviation(cfg, eq.Requests); dev > 0.03*scale+0.05 {
			t.Errorf("trial %d (%+v): profitable deviation %g", trial, cfg, dev)
		}
	}
}
