package miner

import (
	"math"

	"minegame/internal/numeric"
	"minegame/internal/obs"
)

// kktSatisfied reports whether x is (numerically) a KKT point of the
// concave program max f over k: the projected gradient step must be tiny.
func kktSatisfied(k numeric.RequestPolytope, x, grad numeric.Point2, tol float64) bool {
	const alpha = 1e-4
	moved := k.Project(x.Add(grad.Scale(alpha)))
	return moved.Sub(x).Norm() <= tol*alpha
}

// BestResponseConnected solves Problem 1a for one miner: it maximizes the
// connected-mode utility over {e ≥ 0, c ≥ 0, P_e·e + P_c·c ≤ budget}
// given the aggregate requests of the other miners. Optional hints seed
// the numeric refinement (pass the miner's current request during
// best-response iteration to warm-start).
//
// The solver first evaluates the paper's Lagrangian solution (Eqs. 14–15):
// with σ₁² = hβR/(P_e−P_c) and σ₂² = (1−β)R/P_c the interior stationary
// point satisfies E = σ₁√E_{-i} and S = σ₂√S_{-i}, and when the budget
// binds both aggregates shrink by the common factor t = 1/√(1+λ₁), which
// the budget identity pins down in closed form. If the analytic candidate
// passes a KKT check it is returned immediately; corner cases and the
// analytically awkward regimes (P_e ≤ P_c, no rival edge demand) fall
// back to projected-gradient ascent. The objective is concave in the
// miner's own request, so the numeric path is globally correct.
//
//minelint:hotpath
func BestResponseConnected(p Params, budget float64, env Env, hints ...numeric.Point2) numeric.Point2 {
	k := numeric.RequestPolytope{
		PriceE:  p.PriceE,
		PriceC:  p.PriceC,
		Budget:  budget,
		EdgeCap: math.Inf(1),
	}
	f := func(x numeric.Point2) float64 { return UtilityConnected(p, x, env) }
	grad := func(x numeric.Point2) numeric.Point2 { return GradConnected(p, x, env) }
	// The package-wide hit-rate counters answer "how often does the warm
	// or analytic fast path settle a best response" — the lever behind
	// the O(N)-per-sweep hot path. The miner layer has no observer
	// plumbing of its own, so these report through the process default
	// (a single atomic check when observability is off).
	ob := obs.Default()
	ob.Count("miner.best_response_calls_total", 1)

	// Warm path: a hint that already satisfies the KKT conditions is the
	// answer — the iterating solvers hit this on almost every sweep once
	// the profile settles near the equilibrium. The check costs one
	// gradient evaluation and one projection. The e = 0 discontinuity of
	// the fork bonus cannot trap the warm path: at e_i = 0 with rival
	// edge demand the bonus gradient blows up, so KKT fails and the full
	// search below runs.
	if env.SumOthers() > tiny {
		for _, h := range hints {
			h = k.Project(h)
			if kktSatisfied(k, h, grad(h), 1e-7) {
				ob.Count("miner.kkt_warm_hits_total", 1)
				return h
			}
		}
	}

	if cand, ok := analyticConnected(p, budget, env); ok {
		cand = k.Project(cand)
		if kktSatisfied(k, cand, grad(cand), 1e-7) {
			ob.Count("miner.kkt_analytic_hits_total", 1)
			return cand
		}
	}

	best := numeric.Point2{}
	bestV := f(best)
	consider := func(x numeric.Point2) {
		x = k.Project(x)
		if v := f(x); v > bestV {
			best, bestV = x, v
		}
	}
	if cand, ok := analyticConnected(p, budget, env); ok {
		consider(cand)
	}
	if env.EdgeOthers <= tiny && p.Beta > 0 && p.H > 0 {
		// No rival edge demand: the bonus β·h·e/E equals its full value βh
		// for ANY e > 0, so the objective is discontinuous at e = 0 and its
		// supremum is approached as e → 0⁺. Return the limit point at a
		// negligible edge quantum alongside the cloud-optimal split.
		const edgeQuantum = 1e-9
		cOpt := 0.0
		if sOth := env.SumOthers(); sOth > tiny {
			cOpt = math.Sqrt((1-p.Beta)*p.Reward*sOth/p.PriceC) - sOth
			cOpt = numeric.Clamp(cOpt, 0, (budget-p.PriceE*edgeQuantum)/p.PriceC)
		}
		consider(numeric.Point2{E: edgeQuantum, C: cOpt})
	}
	// Numeric refinement from several starts: the hints, the analytic
	// candidate (or current best), the polytope "center", and the two
	// budget corners. The constant capacity keeps the scratch slice on
	// the stack (callers pass at most one hint).
	starts := make([]numeric.Point2, 0, 8)
	starts = append(starts, hints...)
	starts = append(starts,
		best,
		numeric.Point2{E: budget / (4 * p.PriceE), C: budget / (4 * p.PriceC)},
		numeric.Point2{E: budget / p.PriceE, C: 0},
		numeric.Point2{E: 0, C: budget / p.PriceC},
	)
	for _, s := range starts {
		res := numeric.ProjectedGradientAscent(f, grad, k, s, 400, 1e-11)
		if res.Value > bestV {
			best, bestV = res.X, res.Value
		}
	}
	return best
}

// analyticConnected evaluates the closed-form stationary point of
// Eqs. 14–15. It reports ok = false in regimes the formulas do not cover.
func analyticConnected(p Params, budget float64, env Env) (numeric.Point2, bool) {
	if p.PriceE <= p.PriceC || p.Beta <= 0 || p.H <= 0 {
		return numeric.Point2{}, false
	}
	eOth, sOth := env.EdgeOthers, env.SumOthers()
	if eOth <= tiny || sOth <= tiny {
		return numeric.Point2{}, false
	}
	sigma1 := math.Sqrt(p.H * p.Beta * p.Reward / (p.PriceE - p.PriceC))
	sigma2 := math.Sqrt((1 - p.Beta) * p.Reward / p.PriceC)
	sqrtE, sqrtS := math.Sqrt(eOth), math.Sqrt(sOth)

	point := func(t float64) numeric.Point2 {
		e := sigma1*sqrtE*t - eOth
		s := sigma2*sqrtS*t - sOth
		if e < 0 {
			e = 0
		}
		c := s - e
		if c < 0 {
			c = 0
		}
		return numeric.Point2{E: e, C: c}
	}
	cand := point(1)
	if p.Spend(cand) <= budget {
		return cand, true
	}
	// Budget binds: Eq. 15's multiplier in the form t = 1/√(1+λ₁).
	cOth := env.CloudOthers
	den := (p.PriceE-p.PriceC)*sigma1*sqrtE + p.PriceC*sigma2*sqrtS
	if den <= tiny {
		return numeric.Point2{}, false
	}
	t := (budget + p.PriceE*eOth + p.PriceC*cOth) / den
	cand = point(t)
	// Exhaust the budget exactly when the corner clipping allows it.
	if spend := p.Spend(cand); spend < budget {
		if cand.E == 0 {
			cand.C = budget / p.PriceC
		} else if cand.C == 0 {
			cand.E = budget / p.PriceE
		}
	}
	return cand, true
}

// BestResponseStandalone solves the miner's side of Problem 1c: it
// maximizes the standalone-mode utility over
// {e ≥ 0, c ≥ 0, P_e·e + P_c·c ≤ budget, e ≤ edgeCap} where
// edgeCap = E_max − E_{-i} is the edge capacity left by the other miners
// (the GNEP's shared constraint, Eq. 24b). A non-positive edgeCap forces
// e = 0. Optional hints warm-start the search.
func BestResponseStandalone(p Params, budget, edgeCap float64, env Env, hints ...numeric.Point2) numeric.Point2 {
	return bestResponsePenalized(p, 0, budget, edgeCap, env, hints...)
}

// BestResponseStandalonePenalized solves the μ-penalized standalone
// problem used by the variational GNEP decomposition: it maximizes
// U_i(e, c) − μ·e over the budget polytope at the TRUE market prices
// (the multiplier prices the shared capacity constraint in the objective,
// not in the budget). With the market-clearing μ this is each miner's
// subproblem of the variational equilibrium.
func BestResponseStandalonePenalized(p Params, mu, budget float64, env Env, hints ...numeric.Point2) numeric.Point2 {
	return bestResponsePenalized(p, mu, budget, math.Inf(1), env, hints...)
}

// bestResponsePenalized is the shared numeric core of the standalone
// best responses: μ = 0 recovers the plain capped problem.
//
//minelint:hotpath
func bestResponsePenalized(p Params, mu, budget, edgeCap float64, env Env, hints ...numeric.Point2) numeric.Point2 {
	if edgeCap < 0 {
		edgeCap = 0
	}
	k := numeric.RequestPolytope{
		PriceE:  p.PriceE,
		PriceC:  p.PriceC,
		Budget:  budget,
		EdgeCap: edgeCap,
	}
	f := func(x numeric.Point2) float64 { return UtilityStandalone(p, x, env) - mu*x.E }
	grad := func(x numeric.Point2) numeric.Point2 {
		g := GradStandalone(p, x, env)
		g.E -= mu
		return g
	}

	ob := obs.Default()
	ob.Count("miner.best_response_calls_total", 1)
	// Warm path: a hint that already satisfies the KKT conditions is the
	// answer (the iterating solvers hit this almost every sweep).
	for _, h := range hints {
		h = k.Project(h)
		if kktSatisfied(k, h, grad(h), 1e-7) {
			ob.Count("miner.kkt_warm_hits_total", 1)
			return h
		}
	}

	maxE := math.Min(edgeCap, budget/p.PriceE)
	starts := make([]numeric.Point2, 0, 8)
	starts = append(starts, hints...)
	starts = append(starts,
		numeric.Point2{E: maxE / 2, C: budget / (2 * p.PriceC)},
		numeric.Point2{E: maxE, C: 0},
		numeric.Point2{E: 0, C: budget / p.PriceC},
		numeric.Point2{E: maxE / 8, C: budget / (8 * p.PriceC)},
	)
	best := numeric.Point2{}
	bestV := f(best)
	for _, s := range starts {
		res := numeric.ProjectedGradientAscent(f, grad, k, s, 400, 1e-11)
		if res.Value > bestV {
			best, bestV = res.X, res.Value
		}
	}
	return best
}
