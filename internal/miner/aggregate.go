package miner

// Totals-based environments: the O(N) alternative to re-summing a
// Profile for every player. A Totals value carries the profile-wide
// aggregates (E, C); the environment any one miner faces is then
// env_i = totals − own_i, an O(1) subtraction. Iterating solvers keep a
// Totals current across a Gauss–Seidel sweep by applying Shift deltas as
// strategies mutate in place, and re-sum exactly (Aggregate) at every
// sweep boundary so floating-point drift cannot accumulate beyond one
// sweep's worth of rounding; see DESIGN.md §9 for the invariants.

import "minegame/internal/numeric"

// Totals is the aggregate demand of an entire profile: E = Σ e_i and
// C = Σ c_i over ALL miners (the paper's E and C).
type Totals struct {
	Edge  float64 // E, total edge demand
	Cloud float64 // C, total cloud demand
}

// Aggregate sums the profile into its Totals in one O(N) pass.
func (p Profile) Aggregate() Totals {
	var t Totals
	for _, r := range p {
		t.Edge += r.E
		t.Cloud += r.C
	}
	return t
}

// Env returns the environment of a miner whose own request is own,
// assuming own is included in the totals: E_{-i} = E − e_i and
// C_{-i} = C − c_i. Tiny negative residues from floating-point
// cancellation are clamped to zero so downstream guards (which treat
// aggregates ≤ tiny as empty) behave exactly as with fresh summation.
func (t Totals) Env(own numeric.Point2) Env {
	e := t.Edge - own.E
	c := t.Cloud - own.C
	if e < 0 {
		e = 0
	}
	if c < 0 {
		c = 0
	}
	return Env{EdgeOthers: e, CloudOthers: c}
}

// Shift applies an in-place strategy change old → next to the running
// totals — the O(1) update Gauss–Seidel performs after each player moves.
func (t *Totals) Shift(old, next numeric.Point2) {
	t.Edge += next.E - old.E
	t.Cloud += next.C - old.C
}

// Add includes one request in the totals.
func (t *Totals) Add(r numeric.Point2) {
	t.Edge += r.E
	t.Cloud += r.C
}
