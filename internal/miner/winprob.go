package miner

// This file implements the individual winning probabilities of §III of
// the paper. All functions take the miner's own request and the aggregate
// of the others (Env); profile-level convenience wrappers are provided.

import "minegame/internal/numeric"

// WinProbFull is W_i^h (Eq. 6): the winning probability when the request
// is fully satisfied by both providers,
//
//	W_i = (e_i+c_i)/S + β·(e_i·C − c_i·E)/(E·S).
//
// When no miner buys edge units the fork term vanishes (every block pays
// the same propagation delay) and the expression degenerates to unit
// share s_i/S.
func WinProbFull(beta float64, own numeric.Point2, env Env) float64 {
	e := env.EdgeOthers + own.E
	c := env.CloudOthers + own.C
	s := e + c
	if s <= tiny {
		return 0
	}
	w := (own.E + own.C) / s
	if e > tiny {
		w += beta * (own.E*c - own.C*e) / (e * s)
	}
	return w
}

// WinProbTransferred is W_i^{1−h} in connected mode (Eq. 7): the ESP
// transferred the edge request to the CSP, so the whole request mines
// behind the cloud delay: W_i = (1−β)(e_i+c_i)/S.
func WinProbTransferred(beta float64, own numeric.Point2, env Env) float64 {
	s := env.SumOthers() + own.E + own.C
	if s <= tiny {
		return 0
	}
	return (1 - beta) * (own.E + own.C) / s
}

// WinProbRejected is W_i^{1−h} in standalone mode (Eq. 8): the ESP
// rejected the edge request, removing those units from the network:
// W_i = (1−β)·c_i/(S − e_i).
func WinProbRejected(beta float64, own numeric.Point2, env Env) float64 {
	s := env.SumOthers() + own.C
	if s <= tiny {
		return 0
	}
	return (1 - beta) * own.C / s
}

// WinProbConnected is the connected-mode expected winning probability
// (Eq. 9): the law of total expectation over the satisfy/transfer coin,
//
//	W_i = h·W_i^h + (1−h)·W_i^{1−h} = (1−β)(e_i+c_i)/S + β·h·e_i/E.
//
// The closed combination is used directly; the identity with the convex
// combination of Eqs. 6–7 is verified in tests.
func WinProbConnected(beta, h float64, own numeric.Point2, env Env) float64 {
	e := env.EdgeOthers + own.E
	s := env.SumOthers() + own.E + own.C
	if s <= tiny {
		return 0
	}
	w := (1 - beta) * (own.E + own.C) / s
	if e > tiny {
		w += beta * h * own.E / e
	}
	return w
}

// WinProbFullGrad is the gradient of WinProbFull with respect to the
// miner's own request. Writing N = e_i·C − c_i·E:
//
//	∂W/∂e_i = (S−s_i)/S² + β[(C−c_i)·E·S − N·(S+E)]/(E·S)²
//	∂W/∂c_i = (S−s_i)/S² + β[−(E−e_i)·S − N]/(E·S²)
func WinProbFullGrad(beta float64, own numeric.Point2, env Env) numeric.Point2 {
	if env.SumOthers() <= tiny {
		// A lone miner wins with probability 1 for any positive request:
		// W is constant, so its gradient vanishes (the E denominator in
		// the general formula would otherwise blow up at own.E = 0).
		return numeric.Point2{}
	}
	e := env.EdgeOthers + own.E
	c := env.CloudOthers + own.C
	s := e + c
	if s <= tiny {
		s = tiny
	}
	shared := env.SumOthers() / (s * s)
	ge, gc := shared, shared
	if beta > 0 {
		den := e
		if den <= tiny {
			den = tiny
		}
		n := own.E*c - own.C*e
		ge += beta * ((c-own.C)*den*s - n*(s+den)) / (den * den * s * s)
		gc += beta * (-(den-own.E)*s - n) / (den * s * s)
	}
	return numeric.Point2{E: ge, C: gc}
}

// WinProbTransferredGrad is the gradient of WinProbTransferred:
// ∂W/∂e_i = ∂W/∂c_i = (1−β)·S_{-i}/S².
func WinProbTransferredGrad(beta float64, own numeric.Point2, env Env) numeric.Point2 {
	s := env.SumOthers() + own.E + own.C
	if s <= tiny {
		s = tiny
	}
	g := (1 - beta) * env.SumOthers() / (s * s)
	return numeric.Point2{E: g, C: g}
}

// WinProbRejectedGrad is the gradient of WinProbRejected: the rejected
// edge request contributes nothing, so ∂W/∂e = 0 and
// ∂W/∂c = (1−β)·S_{-i}/(S_{-i}+c)².
func WinProbRejectedGrad(beta float64, own numeric.Point2, env Env) numeric.Point2 {
	s := env.SumOthers() + own.C
	if s <= tiny {
		s = tiny
	}
	return numeric.Point2{C: (1 - beta) * env.SumOthers() / (s * s)}
}

// WinProbsFull evaluates Eq. 6 for every miner in the profile. The
// aggregates are summed once, so the whole profile costs O(N).
func WinProbsFull(beta float64, p Profile) []float64 {
	ws := make([]float64, len(p))
	t := p.Aggregate()
	for i, r := range p {
		ws[i] = WinProbFull(beta, r, t.Env(r))
	}
	return ws
}

// WinProbsConnected evaluates Eq. 9 for every miner in the profile. The
// aggregates are summed once, so the whole profile costs O(N).
func WinProbsConnected(beta, h float64, p Profile) []float64 {
	ws := make([]float64, len(p))
	t := p.Aggregate()
	for i, r := range p {
		ws[i] = WinProbConnected(beta, h, r, t.Env(r))
	}
	return ws
}
