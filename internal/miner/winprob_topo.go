package miner

// Per-miner fork-rate variants of the winning probabilities. The paper's
// Eq. 6/9 charge every miner the same scalar β; the topology-aware race
// (internal/chain/topo) measures an effective fork rate β_i per miner
// from its position in the peer graph, and these evaluators thread that
// vector through the same formulas — miner i's blocks are orphaned at
// its own measured rate, not the network average.

import "fmt"

// WinProbsTopo evaluates the connected-mode expected winning probability
// (Eq. 9) for every miner with a per-miner fork rate: miner i wins with
//
//	W_i = (1−β_i)(e_i+c_i)/S + β_i·h·e_i/E.
//
// With a uniform betas vector it reduces to WinProbsConnected. The
// aggregates are summed once, so the whole profile costs O(N). It errors
// when the betas vector does not match the profile length.
func WinProbsTopo(betas []float64, h float64, p Profile) ([]float64, error) {
	if len(betas) != len(p) {
		return nil, fmt.Errorf("miner: %d fork rates for %d miners", len(betas), len(p))
	}
	ws := make([]float64, len(p))
	t := p.Aggregate()
	for i, r := range p {
		ws[i] = WinProbConnected(betas[i], h, r, t.Env(r))
	}
	return ws, nil
}

// UtilitiesTopo evaluates every miner's connected-mode utility with a
// per-miner fork rate: U_i = R·W_i − spend, where W_i charges miner i
// its own β_i. The Beta field of p is ignored in favor of betas[i]. It
// errors when the betas vector does not match the profile length.
func UtilitiesTopo(p Params, betas []float64, prof Profile) ([]float64, error) {
	if len(betas) != len(prof) {
		return nil, fmt.Errorf("miner: %d fork rates for %d miners", len(betas), len(prof))
	}
	us := make([]float64, len(prof))
	t := prof.Aggregate()
	for i, r := range prof {
		pi := p
		pi.Beta = betas[i]
		us[i] = UtilityConnected(pi, r, t.Env(r))
	}
	return us, nil
}
