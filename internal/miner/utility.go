package miner

// Utilities (Eq. 1a / 10a / 24a) and their analytic gradients with respect
// to the miner's own request, used by the best-response solvers. The
// gradients are validated against finite differences in tests.

import "minegame/internal/numeric"

// UtilityConnected is U_i = R·W_i − (P_e·e_i + P_c·c_i) with the
// connected-mode W_i of Eq. 9.
func UtilityConnected(p Params, own numeric.Point2, env Env) float64 {
	return p.Reward*WinProbConnected(p.Beta, p.H, own, env) - p.Spend(own)
}

// GradConnected is ∇U_i for the connected mode:
//
//	∂U/∂e_i = R[(1−β)(S−s_i)/S² + β·h·E_{-i}/E²] − P_e
//	∂U/∂c_i = R[(1−β)(S−s_i)/S²] − P_c
//
// At E = 0 the edge bonus β·h·e_i/E jumps discontinuously (the first edge
// unit claims the whole bonus); the gradient treats the denominator as a
// small positive number so ascent methods are pushed toward e > 0.
func GradConnected(p Params, own numeric.Point2, env Env) numeric.Point2 {
	e := env.EdgeOthers + own.E
	s := env.SumOthers() + own.E + own.C
	if s <= tiny {
		s = tiny
	}
	sOth := s - own.E - own.C
	shared := p.Reward * (1 - p.Beta) * sOth / (s * s)
	ge := shared - p.PriceE
	if p.Beta > 0 && p.H > 0 {
		den := e
		if den <= tiny {
			den = tiny
		}
		ge += p.Reward * p.Beta * p.H * env.EdgeOthers / (den * den)
	}
	return numeric.Point2{E: ge, C: shared - p.PriceC}
}

// UtilityStandalone is U_i = R·W_i − (P_e·e_i + P_c·c_i) with the fully
// satisfied W_i of Eq. 23 (identical to Eq. 6); the capacity coupling
// E ≤ E_max is enforced by the feasible set, not the objective.
func UtilityStandalone(p Params, own numeric.Point2, env Env) float64 {
	return p.Reward*WinProbFull(p.Beta, own, env) - p.Spend(own)
}

// GradStandalone is ∇U_i for the standalone mode: R·∇W_i − (P_e, P_c)
// with the fully satisfied winning probability of Eq. 6/23 (see
// WinProbFullGrad for the expanded derivatives).
func GradStandalone(p Params, own numeric.Point2, env Env) numeric.Point2 {
	g := WinProbFullGrad(p.Beta, own, env)
	return numeric.Point2{
		E: p.Reward*g.E - p.PriceE,
		C: p.Reward*g.C - p.PriceC,
	}
}

// UtilitiesConnected evaluates every miner's connected-mode utility,
// summing the aggregates once so the whole profile costs O(N).
func UtilitiesConnected(p Params, prof Profile) []float64 {
	us := make([]float64, len(prof))
	t := prof.Aggregate()
	for i, r := range prof {
		us[i] = UtilityConnected(p, r, t.Env(r))
	}
	return us
}

// UtilitiesStandalone evaluates every miner's standalone-mode utility,
// summing the aggregates once so the whole profile costs O(N).
func UtilitiesStandalone(p Params, prof Profile) []float64 {
	us := make([]float64, len(prof))
	t := prof.Aggregate()
	for i, r := range prof {
		us[i] = UtilityStandalone(p, r, t.Env(r))
	}
	return us
}
