package miner

// Closed-form symmetric equilibria for homogeneous miners: Theorem 3,
// Corollary 1 (kept general in the transfer factor h; the paper's printed
// corollary is the h = 1 specialization) and the standalone-mode
// sufficient-budget analogues summarized in the paper's Table II.

import (
	"fmt"
	"math"

	"minegame/internal/numeric"
)

// HomogeneousSolution is a symmetric miner equilibrium.
type HomogeneousSolution struct {
	Request       numeric.Point2 // each miner's (e*, c*)
	Mixed         bool           // true when both e* > 0 and c* > 0
	BudgetBinding bool           // true when the budget constraint is active
	// CapacityBinding is set by the standalone solver when the shared
	// E ≤ E_max constraint is active; its shadow price is Multiplier.
	CapacityBinding bool
	Multiplier      float64
}

// MixedStrategyCondition reports whether the price pair admits a mixed
// connected-mode equilibrium: P_c < (1−β)·P_e / (1−β+hβ) (Theorem 3).
func MixedStrategyCondition(p Params) bool {
	return p.PriceC*(1-p.Beta+p.H*p.Beta) < (1-p.Beta)*p.PriceE
}

// HomogeneousConnected returns the symmetric Nash equilibrium of the
// connected-mode miner subgame with n ≥ 2 identical miners of the given
// budget.
//
// When the interior stationary point (Corollary 1 with h kept general),
//
//	e* = hβR(n−1)/(n²(P_e−P_c)),  s* = (1−β)R(n−1)/(n²·P_c),
//
// fits the budget, it is returned with BudgetBinding = false. Otherwise
// the budget binds and Theorem 3 applies:
//
//	e* = B·hβ/[(1−β+hβ)(P_e−P_c)]
//	c* = B·[(1−β)(P_e−P_c) − hβ·P_c]/[P_c(1−β+hβ)(P_e−P_c)].
//
// If the mixed-strategy condition fails the cheaper-and-better provider
// captures the whole demand and the pure-strategy symmetric equilibrium is
// returned instead.
func HomogeneousConnected(p Params, n int, budget float64) (HomogeneousSolution, error) {
	if err := p.Validate(); err != nil {
		return HomogeneousSolution{}, err
	}
	if n < 2 {
		return HomogeneousSolution{}, fmt.Errorf("homogeneous connected: need n ≥ 2 miners, got %d", n)
	}
	if budget <= 0 {
		return HomogeneousSolution{}, fmt.Errorf("homogeneous connected: budget %g must be positive", budget)
	}
	nf := float64(n)
	if p.PriceE > p.PriceC && MixedStrategyCondition(p) {
		eInt := p.H * p.Beta * p.Reward * (nf - 1) / (nf * nf * (p.PriceE - p.PriceC))
		sInt := (1 - p.Beta) * p.Reward * (nf - 1) / (nf * nf * p.PriceC)
		cInt := sInt - eInt
		sol := HomogeneousSolution{
			Request: numeric.Point2{E: eInt, C: cInt},
			Mixed:   eInt > 0 && cInt > 0,
		}
		if p.Spend(sol.Request) <= budget {
			return sol, nil
		}
		denom := (1 - p.Beta + p.H*p.Beta) * (p.PriceE - p.PriceC)
		e := budget * p.H * p.Beta / denom
		c := budget * ((1-p.Beta)*(p.PriceE-p.PriceC) - p.H*p.Beta*p.PriceC) / (p.PriceC * denom)
		return HomogeneousSolution{
			Request:       numeric.Point2{E: e, C: c},
			Mixed:         e > 0 && c > 0,
			BudgetBinding: true,
		}, nil
	}
	// The mixed condition fails, which (given hβ ≥ 0) can only happen when
	// the cloud is too expensive relative to the edge: the equilibrium is
	// the pure all-edge contest with W_i = (1−β+βh)·e_i/E, whose symmetric
	// interior is E = (1−β+βh)R(n−1)/(n·P_e).
	e := (1 - p.Beta + p.H*p.Beta) * p.Reward * (nf - 1) / (nf * nf * p.PriceE)
	sol := HomogeneousSolution{Request: numeric.Point2{E: e}}
	if p.PriceE*e > budget {
		sol.Request.E = budget / p.PriceE
		sol.BudgetBinding = true
	}
	return sol, nil
}

// HomogeneousStandalone returns the symmetric variational equilibrium of
// the standalone-mode miner subgame with n ≥ 2 identical miners holding
// sufficiently large budgets (the paper's Table II regime).
//
// At a symmetric profile the fork term e_i·C − c_i·E vanishes, so the
// first-order conditions give a total demand set by the CSP price alone,
//
//	S* = (1−β)R(n−1)/(n·P_c),
//
// identical to the connected mode — the paper's "total requested units
// remain unchanged" observation. The unconstrained edge demand is the
// h = 1 form E* = βR(n−1)/(n(P_e−P_c)); if it exceeds E_max the shared
// constraint binds, E = E_max, and the reported Multiplier is the
// constraint's common shadow price.
func HomogeneousStandalone(p Params, n int, edgeCapacity float64) (HomogeneousSolution, error) {
	if err := p.Validate(); err != nil {
		return HomogeneousSolution{}, err
	}
	if n < 2 {
		return HomogeneousSolution{}, fmt.Errorf("homogeneous standalone: need n ≥ 2 miners, got %d", n)
	}
	if edgeCapacity <= 0 {
		return HomogeneousSolution{}, fmt.Errorf("homogeneous standalone: capacity %g must be positive", edgeCapacity)
	}
	if p.PriceE <= p.PriceC {
		return HomogeneousSolution{}, fmt.Errorf("homogeneous standalone: needs P_e=%g > P_c=%g", p.PriceE, p.PriceC)
	}
	if p.PriceC >= (1-p.Beta)*p.PriceE {
		return HomogeneousSolution{}, fmt.Errorf("homogeneous standalone: mixed condition P_c < (1−β)P_e fails (P_c=%g, bound=%g)", p.PriceC, (1-p.Beta)*p.PriceE)
	}
	nf := float64(n)
	s := (1 - p.Beta) * p.Reward * (nf - 1) / (nf * p.PriceC)
	e := p.Beta * p.Reward * (nf - 1) / (nf * (p.PriceE - p.PriceC))
	if e <= edgeCapacity {
		return HomogeneousSolution{
			Request: numeric.Point2{E: e / nf, C: (s - e) / nf},
			Mixed:   true,
		}, nil
	}
	e = edgeCapacity
	if s <= e {
		return HomogeneousSolution{}, fmt.Errorf("homogeneous standalone: total demand S*=%g does not exceed capacity %g; no mixed equilibrium", s, e)
	}
	mu := p.Reward*(nf-1)/(nf*s)*(1+p.Beta*(s-e)/e) - p.PriceE
	return HomogeneousSolution{
		Request:         numeric.Point2{E: e / nf, C: (s - e) / nf},
		Mixed:           true,
		CapacityBinding: true,
		Multiplier:      math.Max(mu, 0),
	}, nil
}

// ClearingPriceEdge is the standalone ESP's market-clearing price: the
// highest P_e at which the miners' unconstrained edge demand still equals
// E_max (Problem 2c forces E = E_max at the SP equilibrium):
//
//	P_e = P_c + βR(n−1)/(n·E_max).
func ClearingPriceEdge(reward, beta, priceC float64, n int, edgeCapacity float64) float64 {
	nf := float64(n)
	return priceC + beta*reward*(nf-1)/(nf*edgeCapacity)
}

// OptimalPriceCloudStandalone is the CSP's closed-form best response in
// the standalone sufficient-budget regime. With E pinned at E_max, cloud
// demand is C(P_c) = (1−β)R(n−1)/(n·P_c) − E_max and maximizing
// (P_c − C_c)·C gives
//
//	P_c* = sqrt((1−β)R(n−1)·C_c / (n·E_max)).
//
// Valid while the resulting C stays positive.
func OptimalPriceCloudStandalone(reward, beta, costC float64, n int, edgeCapacity float64) float64 {
	a := (1 - beta) * reward * float64(n-1) / float64(n)
	return math.Sqrt(a * costC / edgeCapacity)
}
