package miner

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestWinProbsTopoUniformReducesToScalar: a uniform betas vector must
// reproduce WinProbsConnected bit for bit — both paths call
// WinProbConnected with the same arguments, so even the float rounding
// matches.
func TestWinProbsTopoUniformReducesToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		beta := rng.Float64() * 0.9
		h := rng.Float64()
		prof := randomProfile(rng, n)
		betas := make([]float64, n)
		for i := range betas {
			betas[i] = beta
		}
		got, err := WinProbsTopo(betas, h, prof)
		if err != nil {
			t.Fatal(err)
		}
		if want := WinProbsConnected(beta, h, prof); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: WinProbsTopo %v != WinProbsConnected %v", trial, got, want)
		}
	}
}

func TestUtilitiesTopoUniformReducesToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := testParams()
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		prof := randomProfile(rng, n)
		betas := make([]float64, n)
		for i := range betas {
			betas[i] = p.Beta
		}
		got, err := UtilitiesTopo(p, betas, prof)
		if err != nil {
			t.Fatal(err)
		}
		if want := UtilitiesConnected(p, prof); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: UtilitiesTopo %v != UtilitiesConnected %v", trial, got, want)
		}
	}
}

// TestTopoBetaDirection: at a symmetric profile, e_i/E equals the total
// share (e_i+c_i)/S, so raising miner i's fork rate moves W_i by
// Δβ·(h−1)·share — strictly down whenever h < 1.
func TestTopoBetaDirection(t *testing.T) {
	prof := randomProfile(rand.New(rand.NewSource(7)), 1)
	sym := Profile{prof[0], prof[0], prof[0], prof[0]}
	low := []float64{0.1, 0.1, 0.1, 0.1}
	high := []float64{0.1, 0.1, 0.1, 0.5}
	wLow, err := WinProbsTopo(low, 0.7, sym)
	if err != nil {
		t.Fatal(err)
	}
	wHigh, err := WinProbsTopo(high, 0.7, sym)
	if err != nil {
		t.Fatal(err)
	}
	if wHigh[3] >= wLow[3] {
		t.Errorf("raising beta at a symmetric profile with h<1 must lower W: %g >= %g", wHigh[3], wLow[3])
	}
	for i := 0; i < 3; i++ {
		if wHigh[i] != wLow[i] {
			t.Errorf("miner %d win prob changed (%g -> %g) though only beta[3] moved", i, wLow[i], wHigh[i])
		}
	}
}

func TestTopoLengthMismatch(t *testing.T) {
	prof := randomProfile(rand.New(rand.NewSource(8)), 4)
	if _, err := WinProbsTopo([]float64{0.1, 0.2}, 0.7, prof); err == nil {
		t.Error("WinProbsTopo must reject a short betas vector")
	}
	if _, err := UtilitiesTopo(testParams(), []float64{0.1, 0.2, 0.3, 0.4, 0.5}, prof); err == nil {
		t.Error("UtilitiesTopo must reject a long betas vector")
	}
}
