package miner

import (
	"math"
	"testing"

	"minegame/internal/numeric"
)

func TestClassifyExactDedup(t *testing.T) {
	budgets := []float64{200, 150, 200, 150, 150, 300}
	cp := ClassifyExact(budgets)
	if cp.N() != 6 {
		t.Fatalf("N = %d, want 6", cp.N())
	}
	if cp.K() != 3 {
		t.Fatalf("K = %d, want 3", cp.K())
	}
	if err := cp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := []Class{{150, 3}, {200, 2}, {300, 1}}
	for k, c := range cp.Classes {
		if c != want[k] {
			t.Fatalf("class %d = %+v, want %+v", k, c, want[k])
		}
	}
	if cp.BudgetSpread() != 0 {
		t.Fatalf("exact dedup reported spread %g", cp.BudgetSpread())
	}
	if cp.CompressRatio() != 2 {
		t.Fatalf("compress ratio = %g, want 2", cp.CompressRatio())
	}
	// Index preserves the original order through Expand.
	reqs := []numeric.Point2{{E: 1, C: 10}, {E: 2, C: 20}, {E: 3, C: 30}}
	prof := cp.Expand(reqs)
	if len(prof) != 6 {
		t.Fatalf("expanded to %d miners", len(prof))
	}
	for i, b := range budgets {
		k := cp.ClassOf(i)
		if cp.Classes[k].Budget != b {
			t.Fatalf("miner %d classed into budget %g, want %g", i, cp.Classes[k].Budget, b)
		}
		if prof[i] != reqs[k] {
			t.Fatalf("miner %d expanded to %+v, want %+v", i, prof[i], reqs[k])
		}
	}
	got := cp.Budgets()
	for i := range budgets {
		if got[i] != budgets[i] {
			t.Fatalf("Budgets()[%d] = %g, want %g", i, got[i], budgets[i])
		}
	}
}

func TestClassifyQuantileBinning(t *testing.T) {
	n := 100
	budgets := make([]float64, n)
	for i := range budgets {
		budgets[i] = 100 + float64(i) // 100 distinct values
	}
	cp := ClassifyQuantile(budgets, 4)
	if cp.K() != 4 {
		t.Fatalf("K = %d, want 4", cp.K())
	}
	if cp.N() != n {
		t.Fatalf("N = %d, want %d", cp.N(), n)
	}
	if err := cp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Each bin holds 25 consecutive values; mean of 100..124 is 112 etc.
	wantReps := []float64{112, 137, 162, 187}
	for k, c := range cp.Classes {
		if c.Count != 25 {
			t.Fatalf("class %d count %d, want 25", k, c.Count)
		}
		if math.Abs(c.Budget-wantReps[k]) > 1e-12 {
			t.Fatalf("class %d rep %g, want %g", k, c.Budget, wantReps[k])
		}
	}
	// Spread: farthest member from a bin mean is 12 (100 vs 112).
	if math.Abs(cp.BudgetSpread()-12) > 1e-12 {
		t.Fatalf("spread = %g, want 12", cp.BudgetSpread())
	}
	// Every miner's recorded class covers its true budget within spread.
	for i, b := range budgets {
		rep := cp.Classes[cp.ClassOf(i)].Budget
		if math.Abs(b-rep) > cp.BudgetSpread()+1e-12 {
			t.Fatalf("miner %d: |%g - %g| exceeds spread %g", i, b, rep, cp.BudgetSpread())
		}
	}
}

func TestClassifyQuantileFallsBackToExact(t *testing.T) {
	budgets := []float64{100, 200, 100, 200}
	cp := ClassifyQuantile(budgets, 10)
	if cp.K() != 2 || cp.BudgetSpread() != 0 {
		t.Fatalf("expected exact dedup (K=2, spread 0), got K=%d spread=%g", cp.K(), cp.BudgetSpread())
	}
}

func TestFromClassesMergesAndOrders(t *testing.T) {
	cp, err := FromClasses([]Class{{Budget: 300, Count: 2}, {Budget: 100, Count: 5}, {Budget: 300, Count: 1}})
	if err != nil {
		t.Fatalf("FromClasses: %v", err)
	}
	if cp.K() != 2 || cp.N() != 8 {
		t.Fatalf("K=%d N=%d, want 2/8", cp.K(), cp.N())
	}
	if cp.Classes[0] != (Class{100, 5}) || cp.Classes[1] != (Class{300, 3}) {
		t.Fatalf("classes = %+v", cp.Classes)
	}
	// Class-major expansion order.
	prof := cp.Expand([]numeric.Point2{{E: 1}, {E: 2}})
	for i := 0; i < 5; i++ {
		if prof[i].E != 1 {
			t.Fatalf("miner %d in class-major order should play class 0", i)
		}
	}
	for i := 5; i < 8; i++ {
		if prof[i].E != 2 {
			t.Fatalf("miner %d in class-major order should play class 1", i)
		}
		if cp.ClassOf(i) != 1 {
			t.Fatalf("ClassOf(%d) = %d, want 1", i, cp.ClassOf(i))
		}
	}

	if _, err := FromClasses(nil); err == nil {
		t.Fatal("empty class list should error")
	}
	if _, err := FromClasses([]Class{{Budget: -1, Count: 3}}); err == nil {
		t.Fatal("negative budget should error")
	}
	if _, err := FromClasses([]Class{{Budget: 10, Count: 0}}); err == nil {
		t.Fatal("zero count should error")
	}
}

func TestClassedAggregateMatchesExpanded(t *testing.T) {
	budgets := []float64{150, 150, 200, 250, 250, 250, 90}
	cp := ClassifyExact(budgets)
	reqs := make([]numeric.Point2, cp.K())
	for k := range reqs {
		reqs[k] = numeric.Point2{E: 1.5 * float64(k+1), C: 0.75 * float64(k+1)}
	}
	classed := cp.Aggregate(reqs)
	full := cp.Expand(reqs).Aggregate()
	if math.Abs(classed.Edge-full.Edge) > 1e-12 || math.Abs(classed.Cloud-full.Cloud) > 1e-12 {
		t.Fatalf("classed totals %+v != expanded totals %+v", classed, full)
	}
}

func TestTotalsShiftN(t *testing.T) {
	t1 := Totals{Edge: 100, Cloud: 50}
	old := numeric.Point2{E: 2, C: 1}
	next := numeric.Point2{E: 3, C: 0.5}
	t1.ShiftN(old, next, 10)
	if math.Abs(t1.Edge-110) > 1e-12 || math.Abs(t1.Cloud-45) > 1e-12 {
		t.Fatalf("ShiftN gave %+v", t1)
	}
	// ShiftN with count 1 agrees with Shift.
	t2 := Totals{Edge: 100, Cloud: 50}
	t3 := t2
	t2.ShiftN(old, next, 1)
	t3.Shift(old, next)
	if t2 != t3 {
		t.Fatalf("ShiftN(1) %+v != Shift %+v", t2, t3)
	}
}

func TestExpandLengthMismatch(t *testing.T) {
	cp := ClassifyExact([]float64{1, 2, 3})
	if cp.Expand([]numeric.Point2{{}}) != nil {
		t.Fatal("Expand with wrong K should return nil")
	}
	agg := cp.Aggregate([]numeric.Point2{{E: 5, C: 5}})
	if agg.Edge != 0 || agg.Cloud != 0 {
		t.Fatal("Aggregate with wrong K should return zero totals")
	}
}

func TestClassifyEmpty(t *testing.T) {
	cp := ClassifyExact(nil)
	if cp.N() != 0 || cp.K() != 0 || cp.CompressRatio() != 0 {
		t.Fatalf("empty classification: %+v", cp)
	}
	if err := cp.Validate(); err == nil {
		t.Fatal("empty population should fail Validate")
	}
}
