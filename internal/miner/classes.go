package miner

// Mean-field class compression: a heterogeneous population whose best
// responses depend on the profile only through the aggregates (ΣE, ΣC)
// collapses into K classes of identical miners solved with
// multiplicities. Two miners belong to the same class exactly when they
// share every best-response input — in this game, the budget (the game
// constants in Params are population-wide) — so a classed equilibrium
// expands to an exact equilibrium of the full N-miner game: every
// member of a class faces the identical environment totals − own and
// therefore shares the identical best-response set. ClassifyQuantile
// trades that exactness for a hard class-count cap with a documented
// budget perturbation bound; see DESIGN.md §12.

import (
	"fmt"
	"math"
	"sort"

	"minegame/internal/numeric"
)

// Class is one group of identical miners: Count members, each with the
// representative Budget.
type Class struct {
	Budget float64 // representative budget B̂
	Count  int     // number of members
}

// ClassedPopulation is a miner population compressed into classes. The
// zero value is empty; build one with ClassifyExact, ClassifyQuantile
// or FromClasses.
type ClassedPopulation struct {
	// Classes are the (budget, count) groups, sorted by ascending
	// budget. Treat as read-only: Expand and the classed solvers assume
	// the slice is not mutated after construction.
	Classes []Class
	// index maps each original miner position to its class, so Expand
	// restores the caller's miner order. nil means class-major order
	// (all of class 0, then class 1, ...), the FromClasses layout.
	index []int
	// n is the total population Σ Count.
	n int
	// budgetSpread is the largest |B_i − B̂_class(i)| the classification
	// introduced (0 for exact dedup).
	budgetSpread float64
}

// N returns the total number of miners across all classes.
func (cp ClassedPopulation) N() int { return cp.n }

// K returns the number of classes.
func (cp ClassedPopulation) K() int { return len(cp.Classes) }

// CompressRatio is N/K, the per-sweep work saved by solving class
// representatives instead of individual miners. An empty population
// reports 0.
func (cp ClassedPopulation) CompressRatio() float64 {
	if len(cp.Classes) == 0 {
		return 0
	}
	return float64(cp.n) / float64(len(cp.Classes))
}

// BudgetSpread is the worst absolute budget perturbation the binning
// introduced: max_i |B_i − B̂_class(i)|. Exact classifications report 0;
// the ε-Nash error of a binned equilibrium on the true budgets is
// bounded by λ_max·BudgetSpread where λ_max is the largest budget
// shadow price (DESIGN.md §12).
func (cp ClassedPopulation) BudgetSpread() float64 { return cp.budgetSpread }

// Counts returns the per-class member counts as a fresh slice (the
// shape the classed solvers take).
func (cp ClassedPopulation) Counts() []int {
	counts := make([]int, len(cp.Classes))
	for k, c := range cp.Classes {
		counts[k] = c.Count
	}
	return counts
}

// ClassOf returns the class index of original miner i. Populations
// built without a per-miner index (FromClasses) use class-major order.
func (cp ClassedPopulation) ClassOf(i int) int {
	if cp.index != nil {
		return cp.index[i]
	}
	for k, c := range cp.Classes {
		if i < c.Count {
			return k
		}
		i -= c.Count
	}
	return len(cp.Classes) - 1
}

// Budgets re-materializes the per-miner budget vector (representative
// values, original miner order) — an O(N) allocation, intended for
// cross-checks at feasible N, not the million-miner hot path.
func (cp ClassedPopulation) Budgets() []float64 {
	out := make([]float64, cp.n)
	for i := range out {
		out[i] = cp.Classes[cp.ClassOf(i)].Budget
	}
	return out
}

// Validate reports structural errors: no classes, non-positive counts,
// or non-finite/non-positive representative budgets.
func (cp ClassedPopulation) Validate() error {
	if len(cp.Classes) == 0 {
		return fmt.Errorf("miner classes: empty population")
	}
	total := 0
	for k, c := range cp.Classes {
		if c.Count <= 0 {
			return fmt.Errorf("miner classes: class %d count %d must be positive", k, c.Count)
		}
		if !(c.Budget > 0) || math.IsInf(c.Budget, 0) {
			return fmt.Errorf("miner classes: class %d budget %g must be positive and finite", k, c.Budget)
		}
		total += c.Count
	}
	if total != cp.n {
		return fmt.Errorf("miner classes: counts sum to %d, population records %d", total, cp.n)
	}
	if cp.index != nil && len(cp.index) != cp.n {
		return fmt.Errorf("miner classes: index has %d entries for %d miners", len(cp.index), cp.n)
	}
	return nil
}

// Expand materializes the full N-miner profile in which every member of
// class k plays reqs[k], in the original miner order. len(reqs) must
// equal K; a mismatch returns nil.
func (cp ClassedPopulation) Expand(reqs []numeric.Point2) Profile {
	if len(reqs) != len(cp.Classes) {
		return nil
	}
	prof := make(Profile, 0, cp.n)
	if cp.index != nil {
		for _, k := range cp.index {
			prof = append(prof, reqs[k])
		}
		return prof
	}
	for k, c := range cp.Classes {
		for j := 0; j < c.Count; j++ {
			prof = append(prof, reqs[k])
		}
	}
	return prof
}

// Aggregate sums the classed profile into population totals in O(K):
// E = Σ_k count_k·e_k, C = Σ_k count_k·c_k. A length mismatch returns
// zero totals.
func (cp ClassedPopulation) Aggregate(reqs []numeric.Point2) Totals {
	var t Totals
	if len(reqs) != len(cp.Classes) {
		return t
	}
	for k, c := range cp.Classes {
		t.Edge += float64(c.Count) * reqs[k].E
		t.Cloud += float64(c.Count) * reqs[k].C
	}
	return t
}

// ClassifyExact compresses a budget vector by exact deduplication: one
// class per distinct budget value, classes sorted by ascending budget,
// each original miner remembered so Expand restores the input order.
// The compression is lossless — the classed equilibrium is an exact
// equilibrium of the N-miner game.
func ClassifyExact(budgets []float64) ClassedPopulation {
	return classify(budgets, 0)
}

// ClassifyQuantile compresses a budget vector into at most maxClasses
// classes: exact deduplication when the distinct values fit, otherwise
// quantile binning — the sorted budgets are split into maxClasses
// near-equal-population contiguous bins and each bin's members adopt
// the bin's mean budget. The representative-budget perturbation is
// recorded in BudgetSpread. maxClasses < 1 is treated as exact.
func ClassifyQuantile(budgets []float64, maxClasses int) ClassedPopulation {
	return classify(budgets, maxClasses)
}

// classify is the shared implementation: maxClasses ≤ 0 means exact.
func classify(budgets []float64, maxClasses int) ClassedPopulation {
	n := len(budgets)
	if n == 0 {
		return ClassedPopulation{}
	}
	// Sort (budget, original index) pairs; grouping is then a linear scan.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return budgets[order[a]] < budgets[order[b]] })

	distinct := 1
	for j := 1; j < n; j++ {
		if budgets[order[j]] != budgets[order[j-1]] { //lint:allow floateq exact dedup on user-supplied budget values, not computed floats
			distinct++
		}
	}

	cp := ClassedPopulation{n: n, index: make([]int, n)}
	if maxClasses <= 0 || distinct <= maxClasses {
		// Exact dedup: one class per distinct value.
		cp.Classes = make([]Class, 0, distinct)
		for j := 0; j < n; j++ {
			b := budgets[order[j]]
			if j == 0 || b != budgets[order[j-1]] { //lint:allow floateq exact dedup on user-supplied budget values, not computed floats
				cp.Classes = append(cp.Classes, Class{Budget: b})
			}
			k := len(cp.Classes) - 1
			cp.Classes[k].Count++
			cp.index[order[j]] = k
		}
		return cp
	}

	// Quantile binning: maxClasses contiguous bins of near-equal
	// population over the sorted order; ties on the bin boundary stay
	// together only by position, not value — the bound below covers it.
	cp.Classes = make([]Class, 0, maxClasses)
	for k := 0; k < maxClasses; k++ {
		lo := k * n / maxClasses
		hi := (k + 1) * n / maxClasses
		if hi <= lo {
			continue
		}
		sum := 0.0
		for j := lo; j < hi; j++ {
			sum += budgets[order[j]]
		}
		rep := sum / float64(hi-lo)
		ki := len(cp.Classes)
		cp.Classes = append(cp.Classes, Class{Budget: rep, Count: hi - lo})
		for j := lo; j < hi; j++ {
			cp.index[order[j]] = ki
			if d := math.Abs(budgets[order[j]] - rep); d > cp.budgetSpread {
				cp.budgetSpread = d
			}
		}
	}
	return cp
}

// FromClasses builds a population directly from class descriptors (the
// streaming-population and CLI path: no per-miner budget vector ever
// exists). Expansion uses class-major miner order. The classes are
// copied and sorted by ascending budget; classes with equal budgets are
// merged.
func FromClasses(classes []Class) (ClassedPopulation, error) {
	if len(classes) == 0 {
		return ClassedPopulation{}, fmt.Errorf("miner classes: empty class list")
	}
	cs := make([]Class, len(classes))
	copy(cs, classes)
	sort.SliceStable(cs, func(a, b int) bool { return cs[a].Budget < cs[b].Budget })
	merged := cs[:1]
	for _, c := range cs[1:] {
		last := &merged[len(merged)-1]
		if c.Budget == last.Budget { //lint:allow floateq exact merge on caller-supplied budget values, not computed floats
			last.Count += c.Count
			continue
		}
		merged = append(merged, c)
	}
	cp := ClassedPopulation{Classes: merged}
	for _, c := range merged {
		cp.n += c.Count
	}
	if err := cp.Validate(); err != nil {
		return ClassedPopulation{}, err
	}
	return cp, nil
}

// ShiftN applies an in-place strategy change old → next for count
// identical miners to the running totals — the O(1) update the classed
// Gauss–Seidel performs after a whole class moves.
func (t *Totals) ShiftN(old, next numeric.Point2, count int) {
	m := float64(count)
	t.Edge += m * (next.E - old.E)
	t.Cloud += m * (next.C - old.C)
}
