// Package miner implements the follower side of the mining game: the
// miners' winning probabilities (Eqs. 4–9 and 23 of the paper), utility
// functions and their analytic gradients, best-response computations for
// both ESP operation modes, and the homogeneous-miner closed forms
// (Theorem 3, Corollary 1, and the Table II standalone analogues).
package miner

import (
	"fmt"
	"math"

	"minegame/internal/numeric"
)

// Params are the game constants every miner observes.
type Params struct {
	Reward float64 // R, blockchain mining reward
	Beta   float64 // β, blockchain fork rate in [0, 1)
	H      float64 // h, connected-ESP satisfy probability in [0, 1]
	PriceE float64 // P_e, ESP unit price
	PriceC float64 // P_c, CSP unit price
}

// Validate reports parameter errors. NaN and infinite values are
// rejected everywhere: they would otherwise slip through ordering
// comparisons and poison the solvers.
func (p Params) Validate() error {
	for _, v := range [...]struct {
		name  string
		value float64
	}{
		{"reward", p.Reward}, {"beta", p.Beta}, {"h", p.H},
		{"P_e", p.PriceE}, {"P_c", p.PriceC},
	} {
		if math.IsNaN(v.value) || math.IsInf(v.value, 0) {
			return fmt.Errorf("miner params: %s is %g, must be finite", v.name, v.value)
		}
	}
	if p.Reward <= 0 {
		return fmt.Errorf("miner params: reward %g must be positive", p.Reward)
	}
	if p.Beta < 0 || p.Beta >= 1 {
		return fmt.Errorf("miner params: beta %g outside [0, 1)", p.Beta)
	}
	if p.H < 0 || p.H > 1 {
		return fmt.Errorf("miner params: h %g outside [0, 1]", p.H)
	}
	if p.PriceE <= 0 || p.PriceC <= 0 {
		return fmt.Errorf("miner params: prices P_e=%g, P_c=%g must be positive", p.PriceE, p.PriceC)
	}
	return nil
}

// Spend is the cost of a request under these prices.
func (p Params) Spend(r numeric.Point2) float64 {
	return p.PriceE*r.E + p.PriceC*r.C
}

// Profile is the stacked request vectors of all miners (the paper's r).
type Profile []numeric.Point2

// Totals returns the aggregate edge demand E, cloud demand C and total
// S = E + C.
func (p Profile) Totals() (e, c, s float64) {
	for _, r := range p {
		e += r.E
		c += r.C
	}
	return e, c, e + c
}

// Env is the aggregate of every miner's requests except one (r_{-i}).
type Env struct {
	EdgeOthers  float64 // E_{-i}
	CloudOthers float64 // C_{-i}
}

// SumOthers returns S_{-i}.
func (v Env) SumOthers() float64 { return v.EdgeOthers + v.CloudOthers }

// Env returns the aggregate environment faced by miner i.
func (p Profile) Env(i int) Env {
	var v Env
	for j, r := range p {
		if j == i {
			continue
		}
		v.EdgeOthers += r.E
		v.CloudOthers += r.C
	}
	return v
}

// Clone returns a deep copy of the profile.
func (p Profile) Clone() Profile {
	q := make(Profile, len(p))
	copy(q, p)
	return q
}

// tiny guards divisions by aggregate quantities that can vanish.
const tiny = 1e-12
