package miner

import (
	"math"
	"testing"

	"minegame/internal/numeric"
)

func TestMixedStrategyCondition(t *testing.T) {
	p := testParams() // Pc(1−β+hβ) = 3.76 < (1−β)Pe = 6.4
	if !MixedStrategyCondition(p) {
		t.Error("default params must admit a mixed strategy")
	}
	p.PriceC = 7
	if MixedStrategyCondition(p) {
		t.Error("expensive cloud must fail the mixed condition")
	}
}

func TestHomogeneousConnectedInterior(t *testing.T) {
	p := testParams()
	const n = 5
	sol, err := HomogeneousConnected(p, n, 1e6)
	if err != nil {
		t.Fatalf("HomogeneousConnected: %v", err)
	}
	// Hand-computed Corollary 1 (with h): e* = hβR(n−1)/(n²(Pe−Pc)).
	wantE := 0.7 * 0.2 * 1000 * 4 / (25 * 4.0)
	wantS := 0.8 * 1000 * 4 / (25 * 4.0)
	if math.Abs(sol.Request.E-wantE) > 1e-9 {
		t.Errorf("e* = %g, want %g", sol.Request.E, wantE)
	}
	if math.Abs(sol.Request.E+sol.Request.C-wantS) > 1e-9 {
		t.Errorf("s* = %g, want %g", sol.Request.E+sol.Request.C, wantS)
	}
	if sol.BudgetBinding || !sol.Mixed {
		t.Errorf("flags = %+v, want interior mixed", sol)
	}
}

func TestHomogeneousConnectedPrintedCorollary1AtH1(t *testing.T) {
	// The paper's printed Corollary 1 has no h; it is the h = 1 form.
	p := testParams()
	p.H = 1
	const n = 5
	sol, err := HomogeneousConnected(p, n, 1e6)
	if err != nil {
		t.Fatalf("HomogeneousConnected: %v", err)
	}
	nf := float64(n)
	wantE := p.Beta * p.Reward * (nf - 1) / (nf * nf * (p.PriceE - p.PriceC))
	wantC := p.Reward * (nf - 1) * ((1-p.Beta)*p.PriceE - p.PriceC) / (nf * nf * p.PriceC * (p.PriceE - p.PriceC))
	if math.Abs(sol.Request.E-wantE) > 1e-9 || math.Abs(sol.Request.C-wantC) > 1e-9 {
		t.Errorf("h=1 closed form = %+v, want (%g, %g)", sol.Request, wantE, wantC)
	}
}

func TestHomogeneousConnectedBudgetBinding(t *testing.T) {
	p := testParams()
	const n, budget = 5, 100.0
	sol, err := HomogeneousConnected(p, n, budget)
	if err != nil {
		t.Fatalf("HomogeneousConnected: %v", err)
	}
	if !sol.BudgetBinding {
		t.Fatal("budget 100 should bind (interior spend is 150.4)")
	}
	if spend := p.Spend(sol.Request); math.Abs(spend-budget) > 1e-9 {
		t.Errorf("spend = %g, want full budget", spend)
	}
	// Theorem 3 formula check.
	denom := (1 - p.Beta + p.H*p.Beta) * (p.PriceE - p.PriceC)
	wantE := budget * p.H * p.Beta / denom
	if math.Abs(sol.Request.E-wantE) > 1e-9 {
		t.Errorf("e* = %g, want Theorem 3 value %g", sol.Request.E, wantE)
	}
}

// TestHomogeneousConnectedIsNashFixedPoint verifies that the closed form
// is a fixed point of the best-response map in both regimes.
func TestHomogeneousConnectedIsNashFixedPoint(t *testing.T) {
	p := testParams()
	const n = 5
	for _, budget := range []float64{60, 100, 200, 1e6} {
		sol, err := HomogeneousConnected(p, n, budget)
		if err != nil {
			t.Fatalf("budget %g: %v", budget, err)
		}
		env := Env{EdgeOthers: (n - 1) * sol.Request.E, CloudOthers: (n - 1) * sol.Request.C}
		br := BestResponseConnected(p, budget, env)
		if !closePt(br, sol.Request, 2e-3) {
			t.Errorf("budget %g: best response %+v != closed form %+v", budget, br, sol.Request)
		}
	}
}

func TestHomogeneousConnectedPureEdge(t *testing.T) {
	p := testParams()
	p.PriceC = 7 // mixed condition fails
	sol, err := HomogeneousConnected(p, 5, 1e6)
	if err != nil {
		t.Fatalf("HomogeneousConnected: %v", err)
	}
	if sol.Request.C != 0 || sol.Request.E <= 0 || sol.Mixed {
		t.Errorf("pure edge solution = %+v", sol)
	}
	// And it must be a fixed point of the best response too.
	env := Env{EdgeOthers: 4 * sol.Request.E}
	br := BestResponseConnected(p, 1e6, env)
	if !closePt(br, sol.Request, 2e-3) {
		t.Errorf("pure-edge best response %+v != closed form %+v", br, sol.Request)
	}
}

func TestHomogeneousConnectedErrors(t *testing.T) {
	p := testParams()
	if _, err := HomogeneousConnected(p, 1, 100); err == nil {
		t.Error("want error for n < 2")
	}
	if _, err := HomogeneousConnected(p, 5, 0); err == nil {
		t.Error("want error for zero budget")
	}
	p.Reward = 0
	if _, err := HomogeneousConnected(p, 5, 100); err == nil {
		t.Error("want error for invalid params")
	}
}

func TestHomogeneousStandaloneUnconstrained(t *testing.T) {
	p := testParams()
	const n = 5
	// Unconstrained edge demand: E* = βR(n−1)/(n(Pe−Pc)) = 40.
	sol, err := HomogeneousStandalone(p, n, 100)
	if err != nil {
		t.Fatalf("HomogeneousStandalone: %v", err)
	}
	if sol.CapacityBinding {
		t.Fatal("capacity 100 must not bind (E* = 40)")
	}
	wantE := 0.2 * 1000 * 4 / (5 * 4.0) / 5
	wantS := 0.8 * 1000 * 4 / (5 * 4.0) / 5
	if math.Abs(sol.Request.E-wantE) > 1e-9 {
		t.Errorf("e* = %g, want %g", sol.Request.E, wantE)
	}
	if math.Abs(sol.Request.E+sol.Request.C-wantS) > 1e-9 {
		t.Errorf("s* = %g, want %g", sol.Request.E+sol.Request.C, wantS)
	}
}

func TestHomogeneousStandaloneCapacityBinding(t *testing.T) {
	p := testParams()
	const n = 5
	sol, err := HomogeneousStandalone(p, n, 20) // E* = 40 > 20
	if err != nil {
		t.Fatalf("HomogeneousStandalone: %v", err)
	}
	if !sol.CapacityBinding {
		t.Fatal("capacity 20 must bind")
	}
	if math.Abs(5*sol.Request.E-20) > 1e-9 {
		t.Errorf("total edge = %g, want capacity 20", 5*sol.Request.E)
	}
	if sol.Multiplier <= 0 {
		t.Errorf("multiplier = %g, want positive shadow price", sol.Multiplier)
	}
	// S* is unchanged by the capacity: only the split moves.
	unc, err := HomogeneousStandalone(p, n, 1e6)
	if err != nil {
		t.Fatalf("unconstrained: %v", err)
	}
	sCap := sol.Request.E + sol.Request.C
	sUnc := unc.Request.E + unc.Request.C
	if math.Abs(sCap-sUnc) > 1e-9 {
		t.Errorf("total demand changed with capacity: %g vs %g", sCap, sUnc)
	}
}

// TestHomogeneousStandaloneIsGNEFixedPoint verifies the Table II closed
// form against the numeric standalone best response: each miner's closed
// form must be (near) optimal against the other n−1 copies under the
// remaining-capacity constraint.
func TestHomogeneousStandaloneIsGNEFixedPoint(t *testing.T) {
	p := testParams()
	const n = 5
	for _, cap := range []float64{20.0, 100.0} {
		sol, err := HomogeneousStandalone(p, n, cap)
		if err != nil {
			t.Fatalf("cap %g: %v", cap, err)
		}
		env := Env{EdgeOthers: (n - 1) * sol.Request.E, CloudOthers: (n - 1) * sol.Request.C}
		br := BestResponseStandalone(p, 1e9, cap-env.EdgeOthers, env)
		uBR := UtilityStandalone(p, br, env)
		uSol := UtilityStandalone(p, sol.Request, env)
		// The variational solution may differ slightly from the
		// unilateral optimum when the shared constraint binds, but it
		// must not be exploitable by more than a sliver.
		if uBR > uSol+1e-3*math.Abs(uSol)+1e-3 {
			t.Errorf("cap %g: deviation improves utility %g -> %g (closed form %+v, br %+v)",
				cap, uSol, uBR, sol.Request, br)
		}
	}
}

func TestHomogeneousStandaloneErrors(t *testing.T) {
	p := testParams()
	if _, err := HomogeneousStandalone(p, 1, 50); err == nil {
		t.Error("want error for n < 2")
	}
	if _, err := HomogeneousStandalone(p, 5, 0); err == nil {
		t.Error("want error for zero capacity")
	}
	bad := p
	bad.PriceE = bad.PriceC
	if _, err := HomogeneousStandalone(bad, 5, 50); err == nil {
		t.Error("want error for Pe <= Pc")
	}
	bad = p
	bad.PriceC = 0.9 * (1 - bad.Beta) * bad.PriceE // fails Pc < (1−β)Pe? 0.9×0.8×8=5.76 < 6.4 ok
	bad.PriceC = (1 - bad.Beta) * bad.PriceE
	if _, err := HomogeneousStandalone(bad, 5, 50); err == nil {
		t.Error("want error when mixed condition fails")
	}
}

func TestClearingPriceEdge(t *testing.T) {
	p := testParams()
	const n, cap = 5, 25.0
	pe := ClearingPriceEdge(p.Reward, p.Beta, p.PriceC, n, cap)
	// At the clearing price the unconstrained edge demand equals capacity.
	p2 := p
	p2.PriceE = pe
	sol, err := HomogeneousStandalone(p2, n, 1e9)
	if err != nil {
		t.Fatalf("HomogeneousStandalone: %v", err)
	}
	if total := float64(n) * sol.Request.E; math.Abs(total-cap) > 1e-6 {
		t.Errorf("edge demand at clearing price = %g, want %g", total, cap)
	}
}

func TestOptimalPriceCloudStandalone(t *testing.T) {
	p := testParams()
	const n, cap, costC = 5, 25.0, 1.0
	got := OptimalPriceCloudStandalone(p.Reward, p.Beta, costC, n, cap)
	// Verify against a numeric sweep of the CSP profit with E = E_max.
	a := (1 - p.Beta) * p.Reward * float64(n-1) / float64(n)
	profit := func(pc float64) float64 { return (pc - costC) * (a/pc - cap) }
	best, _ := numeric.MaximizeGolden(profit, costC, 50, 1e-10)
	if math.Abs(got-best) > 1e-4 {
		t.Errorf("closed form Pc* = %g, numeric %g", got, best)
	}
}
