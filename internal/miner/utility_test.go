package miner

import (
	"math"
	"math/rand"
	"testing"

	"minegame/internal/numeric"
)

// TestGradientsMatchFiniteDifferences validates the analytic gradients of
// both utility forms against central finite differences at random
// interior points.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 400; trial++ {
		p := Params{
			Reward: 100 + 900*rng.Float64(),
			Beta:   rng.Float64() * 0.8,
			H:      rng.Float64(),
			PriceE: 1 + 9*rng.Float64(),
			PriceC: 1 + 9*rng.Float64(),
		}
		env := Env{EdgeOthers: 0.5 + 10*rng.Float64(), CloudOthers: 0.5 + 10*rng.Float64()}
		own := numeric.Point2{E: 0.5 + 5*rng.Float64(), C: 0.5 + 5*rng.Float64()}

		fc := func(x numeric.Point2) float64 { return UtilityConnected(p, x, env) }
		gotC := GradConnected(p, own, env)
		wantC := numeric.Grad2FiniteDiff(fc, 1e-5)(own)
		if !closePt(gotC, wantC, 1e-3) {
			t.Fatalf("connected gradient mismatch at %+v: analytic %+v, fd %+v (params %+v env %+v)", own, gotC, wantC, p, env)
		}

		fs := func(x numeric.Point2) float64 { return UtilityStandalone(p, x, env) }
		gotS := GradStandalone(p, own, env)
		wantS := numeric.Grad2FiniteDiff(fs, 1e-5)(own)
		if !closePt(gotS, wantS, 1e-3) {
			t.Fatalf("standalone gradient mismatch at %+v: analytic %+v, fd %+v (params %+v env %+v)", own, gotS, wantS, p, env)
		}
	}
}

func closePt(a, b numeric.Point2, tol float64) bool {
	return numeric.AlmostEqual(a.E, b.E, tol) && numeric.AlmostEqual(a.C, b.C, tol)
}

func TestUtilityKnownValue(t *testing.T) {
	p := testParams()
	own := numeric.Point2{E: 2, C: 4}
	env := Env{EdgeOthers: 6, CloudOthers: 8}
	// E=8, C=12, S=20.
	wFull := 6.0/20 + 0.2*(2*12-4*8)/(8.0*20)
	wantStandalone := 1000*wFull - (8*2 + 4*4)
	if got := UtilityStandalone(p, own, env); math.Abs(got-wantStandalone) > 1e-9 {
		t.Errorf("standalone utility = %g, want %g", got, wantStandalone)
	}
	wConn := (1-0.2)*6.0/20 + 0.2*0.7*2.0/8
	wantConnected := 1000*wConn - 32
	if got := UtilityConnected(p, own, env); math.Abs(got-wantConnected) > 1e-9 {
		t.Errorf("connected utility = %g, want %g", got, wantConnected)
	}
}

func TestUtilitiesProfileWrappers(t *testing.T) {
	p := testParams()
	prof := Profile{{E: 2, C: 4}, {E: 6, C: 8}}
	uc := UtilitiesConnected(p, prof)
	us := UtilitiesStandalone(p, prof)
	if len(uc) != 2 || len(us) != 2 {
		t.Fatal("wrapper lengths")
	}
	if got := UtilityConnected(p, prof[0], prof.Env(0)); uc[0] != got {
		t.Errorf("wrapper uc[0] = %g, want %g", uc[0], got)
	}
	if got := UtilityStandalone(p, prof[1], prof.Env(1)); us[1] != got {
		t.Errorf("wrapper us[1] = %g, want %g", us[1], got)
	}
}

// TestConnectedUtilityConcaveInOwnStrategy spot-checks midpoint concavity
// of the connected utility in the miner's own request, the property the
// uniqueness proof (Theorem 2) relies on.
func TestConnectedUtilityConcaveInOwnStrategy(t *testing.T) {
	p := testParams()
	env := Env{EdgeOthers: 5, CloudOthers: 12}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		a := numeric.Point2{E: rng.Float64() * 20, C: rng.Float64() * 20}
		b := numeric.Point2{E: rng.Float64() * 20, C: rng.Float64() * 20}
		mid := a.Add(b).Scale(0.5)
		ua := UtilityConnected(p, a, env)
		ub := UtilityConnected(p, b, env)
		um := UtilityConnected(p, mid, env)
		if um < (ua+ub)/2-1e-9 {
			t.Fatalf("concavity violated at %+v / %+v: mid %g < avg %g", a, b, um, (ua+ub)/2)
		}
	}
}
