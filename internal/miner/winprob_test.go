package miner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"minegame/internal/numeric"
)

func testParams() Params {
	return Params{Reward: 1000, Beta: 0.2, H: 0.7, PriceE: 8, PriceC: 4}
}

func randomProfile(rng *rand.Rand, n int) Profile {
	p := make(Profile, n)
	for i := range p {
		p[i] = numeric.Point2{E: rng.Float64() * 10, C: rng.Float64() * 10}
	}
	return p
}

// TestTheorem1 verifies Σ_i W_i = 1 (the paper's Theorem 1) over random
// request profiles.
func TestTheorem1(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	property := func() bool {
		n := 2 + rng.Intn(8)
		beta := rng.Float64() * 0.9
		prof := randomProfile(rng, n)
		total := numeric.Sum(WinProbsFull(beta, prof))
		if math.Abs(total-1) > 1e-9 {
			t.Logf("ΣW = %.12f for beta=%g profile=%v", total, beta, prof)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestConnectedIdentity verifies Eq. 9's closed combination equals
// h·W^h + (1−h)·W^{1−h} built from Eqs. 6–7.
func TestConnectedIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(6)
		beta := rng.Float64() * 0.9
		h := rng.Float64()
		prof := randomProfile(rng, n)
		for i, own := range prof {
			env := prof.Env(i)
			combined := h*WinProbFull(beta, own, env) + (1-h)*WinProbTransferred(beta, own, env)
			direct := WinProbConnected(beta, h, own, env)
			if math.Abs(combined-direct) > 1e-9 {
				t.Fatalf("identity violated: combined=%.12f direct=%.12f (beta=%g h=%g)", combined, direct, beta, h)
			}
		}
	}
}

func TestWinProbDegenerateProfiles(t *testing.T) {
	env := Env{}
	zero := numeric.Point2{}
	if WinProbFull(0.2, zero, env) != 0 {
		t.Error("empty network must give W = 0")
	}
	if WinProbConnected(0.2, 0.7, zero, env) != 0 {
		t.Error("empty network must give connected W = 0")
	}
	if WinProbTransferred(0.2, zero, env) != 0 || WinProbRejected(0.2, zero, env) != 0 {
		t.Error("degraded forms must give 0 on empty network")
	}
	// Single all-cloud miner: no edge power anywhere.
	own := numeric.Point2{C: 5}
	if got := WinProbFull(0.2, own, env); math.Abs(got-1) > 1e-12 {
		t.Errorf("lone cloud miner W = %g, want 1 (no fork rivals)", got)
	}
}

func TestWinProbRejected(t *testing.T) {
	// Miner 0's edge request rejected: only its cloud part mines, and its
	// edge units leave the network entirely.
	own := numeric.Point2{E: 3, C: 2}
	env := Env{EdgeOthers: 5, CloudOthers: 5}
	got := WinProbRejected(0.25, own, env)
	want := (1 - 0.25) * 2.0 / (10 + 2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("W rejected = %g, want %g", got, want)
	}
}

func TestWinProbFullKnownValue(t *testing.T) {
	// Hand-computed: e=[2,1], c=[1,3]; E=3, C=4, S=7, β=0.5.
	prof := Profile{{E: 2, C: 1}, {E: 1, C: 3}}
	ws := WinProbsFull(0.5, prof)
	w0 := 3.0/7 + 0.5*(2*4-1*3)/(3.0*7)
	w1 := 4.0/7 + 0.5*(1*4-3*3)/(3.0*7)
	if math.Abs(ws[0]-w0) > 1e-12 || math.Abs(ws[1]-w1) > 1e-12 {
		t.Errorf("W = %v, want [%g, %g]", ws, w0, w1)
	}
	if math.Abs(ws[0]+ws[1]-1) > 1e-12 {
		t.Errorf("ΣW = %g", ws[0]+ws[1])
	}
}

func TestProfileHelpers(t *testing.T) {
	prof := Profile{{E: 1, C: 2}, {E: 3, C: 4}, {E: 5, C: 6}}
	e, c, s := prof.Totals()
	if e != 9 || c != 12 || s != 21 {
		t.Errorf("totals = %g, %g, %g", e, c, s)
	}
	env := prof.Env(1)
	if env.EdgeOthers != 6 || env.CloudOthers != 8 || env.SumOthers() != 14 {
		t.Errorf("env = %+v", env)
	}
	clone := prof.Clone()
	clone[0].E = 99
	if prof[0].E != 1 {
		t.Error("Clone must not share backing storage")
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
		ok     bool
	}{
		{"valid", func(*Params) {}, true},
		{"zero reward", func(p *Params) { p.Reward = 0 }, false},
		{"beta = 1", func(p *Params) { p.Beta = 1 }, false},
		{"negative beta", func(p *Params) { p.Beta = -0.1 }, false},
		{"h > 1", func(p *Params) { p.H = 1.1 }, false},
		{"zero priceE", func(p *Params) { p.PriceE = 0 }, false},
		{"zero priceC", func(p *Params) { p.PriceC = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := testParams()
			tt.mutate(&p)
			if err := p.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestParamsSpend(t *testing.T) {
	p := testParams()
	if got := p.Spend(numeric.Point2{E: 2, C: 3}); got != 8*2+4*3 {
		t.Errorf("Spend = %g, want 28", got)
	}
}
