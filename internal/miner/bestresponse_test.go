package miner

import (
	"math"
	"math/rand"
	"testing"

	"minegame/internal/numeric"
)

// gridBest brute-forces the best utility over the feasible region.
func gridBest(f func(numeric.Point2) float64, k numeric.RequestPolytope, steps int) (numeric.Point2, float64) {
	maxE := k.Budget / k.PriceE
	if k.EdgeCap < maxE {
		maxE = k.EdgeCap
	}
	maxC := k.Budget / k.PriceC
	best, bestV := numeric.Point2{}, math.Inf(-1)
	for i := 0; i <= steps; i++ {
		for j := 0; j <= steps; j++ {
			p := numeric.Point2{E: maxE * float64(i) / float64(steps), C: maxC * float64(j) / float64(steps)}
			if !k.Contains(p, 1e-12) {
				continue
			}
			if v := f(p); v > bestV {
				best, bestV = p, v
			}
		}
	}
	return best, bestV
}

func TestBestResponseConnectedBeatsGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 60; trial++ {
		p := Params{
			Reward: 500 + 1000*rng.Float64(),
			Beta:   0.05 + 0.5*rng.Float64(),
			H:      0.2 + 0.8*rng.Float64(),
			PriceC: 1 + 4*rng.Float64(),
		}
		p.PriceE = p.PriceC * (1.1 + 2*rng.Float64())
		budget := 50 + 250*rng.Float64()
		env := Env{EdgeOthers: 1 + 15*rng.Float64(), CloudOthers: 1 + 30*rng.Float64()}

		got := BestResponseConnected(p, budget, env)
		k := numeric.RequestPolytope{PriceE: p.PriceE, PriceC: p.PriceC, Budget: budget, EdgeCap: math.Inf(1)}
		if !k.Contains(got, 1e-8) {
			t.Fatalf("best response %+v infeasible (budget %g, params %+v)", got, budget, p)
		}
		f := func(x numeric.Point2) float64 { return UtilityConnected(p, x, env) }
		_, gridV := gridBest(f, k, 60)
		if f(got) < gridV-1e-6*math.Abs(gridV)-1e-6 {
			t.Fatalf("best response utility %.9g below grid best %.9g (params %+v env %+v budget %g)",
				f(got), gridV, p, env, budget)
		}
	}
}

func TestBestResponseConnectedRespectsBudget(t *testing.T) {
	p := testParams()
	env := Env{EdgeOthers: 10, CloudOthers: 20}
	for _, budget := range []float64{5, 20, 50, 100, 1000} {
		got := BestResponseConnected(p, budget, env)
		if spend := p.Spend(got); spend > budget+1e-6 {
			t.Errorf("budget %g: spend %g exceeds it", budget, spend)
		}
	}
}

func TestBestResponseConnectedTightBudgetBinds(t *testing.T) {
	// With a generous unconstrained optimum, a small budget must be spent
	// fully (the utility is strictly increasing at small requests).
	p := testParams()
	env := Env{EdgeOthers: 10, CloudOthers: 20}
	got := BestResponseConnected(p, 10, env)
	if spend := p.Spend(got); math.Abs(spend-10) > 1e-4 {
		t.Errorf("spend = %g, want the full budget 10", spend)
	}
}

func TestBestResponseConnectedFallbackRegimes(t *testing.T) {
	env := Env{EdgeOthers: 10, CloudOthers: 20}
	// P_e ≤ P_c: edge is cheaper and strictly better, so cloud is unused.
	p := testParams()
	p.PriceE, p.PriceC = 3, 4
	got := BestResponseConnected(p, 200, env)
	if got.C > 1e-6 {
		t.Errorf("cloud units %g bought although edge dominates", got.C)
	}
	if got.E <= 0 {
		t.Error("no edge units bought although edge dominates")
	}
	// No rival edge demand: the analytic path is skipped but the numeric
	// path must still produce a feasible, grid-dominant answer.
	p = testParams()
	envNoEdge := Env{EdgeOthers: 0, CloudOthers: 20}
	got = BestResponseConnected(p, 200, envNoEdge)
	k := numeric.RequestPolytope{PriceE: p.PriceE, PriceC: p.PriceC, Budget: 200, EdgeCap: math.Inf(1)}
	f := func(x numeric.Point2) float64 { return UtilityConnected(p, x, envNoEdge) }
	_, gridV := gridBest(f, k, 80)
	if f(got) < gridV-1e-6 {
		t.Errorf("no-rival-edge: utility %g below grid best %g", f(got), gridV)
	}
}

func TestAnalyticConnectedMatchesInteriorFixedPoint(t *testing.T) {
	// At the homogeneous interior equilibrium, the best response to n−1
	// copies of the closed-form request must reproduce that request.
	p := testParams()
	const n = 5
	sol, err := HomogeneousConnected(p, n, 1e9)
	if err != nil {
		t.Fatalf("HomogeneousConnected: %v", err)
	}
	env := Env{EdgeOthers: (n - 1) * sol.Request.E, CloudOthers: (n - 1) * sol.Request.C}
	br := BestResponseConnected(p, 1e9, env)
	if !closePt(br, sol.Request, 1e-4) {
		t.Errorf("best response %+v differs from closed form %+v", br, sol.Request)
	}
}

func TestBestResponseStandaloneBeatsGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		p := Params{
			Reward: 500 + 1000*rng.Float64(),
			Beta:   0.05 + 0.5*rng.Float64(),
			H:      1,
			PriceC: 1 + 4*rng.Float64(),
		}
		p.PriceE = p.PriceC * (1.1 + 2*rng.Float64())
		budget := 50 + 250*rng.Float64()
		edgeCap := 2 + 20*rng.Float64()
		env := Env{EdgeOthers: 1 + 15*rng.Float64(), CloudOthers: 1 + 30*rng.Float64()}

		got := BestResponseStandalone(p, budget, edgeCap, env)
		k := numeric.RequestPolytope{PriceE: p.PriceE, PriceC: p.PriceC, Budget: budget, EdgeCap: edgeCap}
		if !k.Contains(got, 1e-8) {
			t.Fatalf("best response %+v infeasible (cap %g)", got, edgeCap)
		}
		f := func(x numeric.Point2) float64 { return UtilityStandalone(p, x, env) }
		_, gridV := gridBest(f, k, 60)
		if f(got) < gridV-1e-6*math.Abs(gridV)-1e-6 {
			t.Fatalf("standalone best response %.9g below grid best %.9g (params %+v env %+v budget %g cap %g)",
				f(got), gridV, p, env, budget, edgeCap)
		}
	}
}

func TestBestResponseStandaloneZeroCapacity(t *testing.T) {
	p := testParams()
	env := Env{EdgeOthers: 10, CloudOthers: 20}
	got := BestResponseStandalone(p, 200, 0, env)
	if got.E != 0 {
		t.Errorf("edge request %g with zero remaining capacity", got.E)
	}
	if got.C <= 0 {
		t.Error("cloud request should be positive when edge is unavailable")
	}
	// Negative remaining capacity behaves like zero.
	got = BestResponseStandalone(p, 200, -3, env)
	if got.E != 0 {
		t.Errorf("edge request %g with negative remaining capacity", got.E)
	}
}
