package minegame_test

// One benchmark per paper artifact (tables AND figures), each regenerating
// the corresponding evaluation output through the experiment harness,
// plus micro-benchmarks of the core solver operations. The RL-backed
// artifacts (fig9a/fig9b) run at the reduced Quick scale so a -bench=.
// sweep completes in minutes; every other artifact runs at full scale.

import (
	"io"
	"testing"

	"minegame"
)

func benchExperiment(b *testing.B, id string, quick bool) {
	b.Helper()
	cfg := minegame.ExperimentConfig{Seed: 1, Quick: quick}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := minegame.RunExperiment(id, cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(res.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkFig2Collision(b *testing.B)    { benchExperiment(b, "fig2", false) }
func BenchmarkFig3Population(b *testing.B)   { benchExperiment(b, "fig3", false) }
func BenchmarkFig4MinerNE(b *testing.B)      { benchExperiment(b, "fig4", false) }
func BenchmarkFig5Revenue(b *testing.B)      { benchExperiment(b, "fig5", false) }
func BenchmarkFig6Standalone(b *testing.B)   { benchExperiment(b, "fig6", false) }
func BenchmarkFig7Budget(b *testing.B)       { benchExperiment(b, "fig7", false) }
func BenchmarkFig8Pricing(b *testing.B)      { benchExperiment(b, "fig8", false) }
func BenchmarkFig9aUncertainty(b *testing.B) { benchExperiment(b, "fig9a", true) }
func BenchmarkFig9bVariance(b *testing.B)    { benchExperiment(b, "fig9b", true) }
func BenchmarkTable2ClosedForm(b *testing.B) { benchExperiment(b, "tab2", false) }
func BenchmarkTheorem1Validity(b *testing.B) { benchExperiment(b, "thm1", false) }
func BenchmarkSimWinProb(b *testing.B)       { benchExperiment(b, "simw", true) }

// Ablations of the reproduction's design choices (DESIGN.md §2).

func BenchmarkAblationBeta(b *testing.B)           { benchExperiment(b, "ablbeta", false) }
func BenchmarkAblationErlangH(b *testing.B)        { benchExperiment(b, "ablh", false) }
func BenchmarkAblationDiscretization(b *testing.B) { benchExperiment(b, "abldisc", false) }
func BenchmarkAblationGNEConcept(b *testing.B)     { benchExperiment(b, "ablgne", false) }
func BenchmarkAblationLeaderStage(b *testing.B)    { benchExperiment(b, "abllead", false) }
func BenchmarkAblationLearners(b *testing.B)       { benchExperiment(b, "ablrl", true) }
func BenchmarkAblationEnvironments(b *testing.B)   { benchExperiment(b, "ablenv", true) }

// Integration-grade experiments.

func BenchmarkConvergenceDiagnostics(b *testing.B) { benchExperiment(b, "conv", false) }
func BenchmarkEndToEnd(b *testing.B)               { benchExperiment(b, "e2e", true) }
func BenchmarkAdaptivePricing(b *testing.B)        { benchExperiment(b, "adaptive", true) }
func BenchmarkHeterogeneousStackelberg(b *testing.B) {
	benchExperiment(b, "hetero", false)
}

// Micro-benchmarks of the building blocks.

func defaultBenchConfig() minegame.Config {
	return minegame.Config{
		N:            5,
		Budgets:      []float64{200},
		Reward:       1000,
		Beta:         0.2,
		SatisfyProb:  0.7,
		Mode:         minegame.Connected,
		EdgeCapacity: 60,
		CostE:        2,
		CostC:        1,
	}
}

func BenchmarkMinerEquilibriumConnected(b *testing.B) {
	cfg := defaultBenchConfig()
	p := minegame.Prices{Edge: 8, Cloud: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minegame.SolveMinerEquilibrium(cfg, p, minegame.NEOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinerEquilibriumStandalone(b *testing.B) {
	cfg := defaultBenchConfig()
	cfg.Mode = minegame.Standalone
	cfg.EdgeCapacity = 20
	p := minegame.Prices{Edge: 8, Cloud: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minegame.SolveMinerEquilibrium(cfg, p, minegame.NEOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStackelbergConnected(b *testing.B) {
	cfg := defaultBenchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minegame.SolveStackelberg(cfg, minegame.StackelbergOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStackelbergStandalone(b *testing.B) {
	cfg := defaultBenchConfig()
	cfg.Mode = minegame.Standalone
	cfg.EdgeCapacity = 25
	cfg.Budgets = []float64{1000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minegame.SolveStackelberg(cfg, minegame.StackelbergOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainRound(b *testing.B) {
	race := minegame.RaceConfig{
		Interval:   600,
		CloudDelay: 120,
		Allocations: []minegame.Allocation{
			{MinerID: 1, Edge: 4, Cloud: 16},
			{MinerID: 2, Edge: 2, Cloud: 20},
			{MinerID: 3, Edge: 6, Cloud: 10},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minegame.SimulateRounds(race, 100, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Instrumented-vs-uninstrumented pairs: the same solver and mining-race
// workloads with an enabled observer (trace to io.Discard) installed as
// the process default. Compared against the uninstrumented benchmarks
// above, they bound the observability overhead; with no observer the
// instrumentation must be within noise (see results/obs_overhead.md).

// withEnabledObserver installs an enabled default observer tracing to
// io.Discard for the duration of the benchmark.
func withEnabledObserver(b *testing.B) {
	b.Helper()
	o := minegame.NewObserver()
	o.SetTrace(io.Discard)
	prev := minegame.SetDefaultObserver(o)
	b.Cleanup(func() { minegame.SetDefaultObserver(prev) })
}

func BenchmarkMinerEquilibriumConnectedObserved(b *testing.B) {
	withEnabledObserver(b)
	cfg := defaultBenchConfig()
	p := minegame.Prices{Edge: 8, Cloud: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minegame.SolveMinerEquilibrium(cfg, p, minegame.NEOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainRoundObserved(b *testing.B) {
	withEnabledObserver(b)
	race := minegame.RaceConfig{
		Interval:   600,
		CloudDelay: 120,
		Allocations: []minegame.Allocation{
			{MinerID: 1, Edge: 4, Cloud: 16},
			{MinerID: 2, Edge: 2, Cloud: 20},
			{MinerID: 3, Edge: 6, Cloud: 10},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minegame.SimulateRounds(race, 100, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHomogeneousClosedForm(b *testing.B) {
	p := minegame.MinerParams{Reward: 1000, Beta: 0.2, H: 0.7, PriceE: 8, PriceC: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minegame.HomogeneousConnected(p, 5, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPopulationEquilibrium(b *testing.B) {
	p := minegame.MinerParams{Reward: 1000, Beta: 0.2, H: 0.7, PriceE: 8, PriceC: 4}
	pmf, err := minegame.PopulationModel{Mu: 10, Sigma: 2}.PMF()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minegame.SolvePopulationEquilibrium(p, pmf, 200, minegame.PopulationOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension experiments.

func BenchmarkMultiESPCompetition(b *testing.B) { benchExperiment(b, "multiesp", false) }
func BenchmarkWealthDynamics(b *testing.B)      { benchExperiment(b, "wealth", true) }
func BenchmarkGossipTopology(b *testing.B)      { benchExperiment(b, "gossip", true) }
func BenchmarkSensitivity(b *testing.B)         { benchExperiment(b, "sens", false) }

// Fine-grained micro-benchmarks.

func BenchmarkWinProbsFull(b *testing.B) {
	profile := []minegame.Request{
		{E: 5.6, C: 26.4}, {E: 2, C: 40}, {E: 10, C: 5}, {E: 0, C: 20}, {E: 4, C: 15},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ws := minegame.WinProbsFull(0.2, profile); len(ws) != 5 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkErlangB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := minegame.ErlangB(30, 25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiESPSolve(b *testing.B) {
	cfg := minegame.MultiESPConfig{
		N:      5,
		Budget: 200,
		Reward: 1000,
		Beta:   0.2,
		ESPs:   []minegame.MultiESPOffer{{Price: 9, H: 0.9}, {Price: 6, H: 0.4}},
		PriceC: 4,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minegame.SolveMultiESP(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollisionCDF(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += minegame.CollisionCDF(float64(i%600), 600)
	}
	_ = sink
}
func BenchmarkSelfishMining(b *testing.B)   { benchExperiment(b, "selfish", true) }
func BenchmarkRetargeting(b *testing.B)     { benchExperiment(b, "retarget", false) }
func BenchmarkDegradedForms(b *testing.B)   { benchExperiment(b, "degraded", true) }
func BenchmarkAblationBilling(b *testing.B) { benchExperiment(b, "ablbill", true) }
func BenchmarkHeadlineClaims(b *testing.B)  { benchExperiment(b, "headline", false) }
func BenchmarkFig9aReplicated(b *testing.B) { benchExperiment(b, "fig9rep", true) }

// Sequential-vs-parallel pairs (results/parallel_speedup.md). Each pair
// runs the identical workload with the worker pool pinned to one worker
// and at the process default (GOMAXPROCS); outputs are byte-identical,
// so the pairs measure pure scheduling cost or gain.

// benchReplicate replicates the stochastic simulator experiment across
// four seeds — the seed fan-out path in experiments.Replicate.
func benchReplicate(b *testing.B, workers int) {
	b.Helper()
	cfg := minegame.ExperimentConfig{Seed: 1, Quick: true, Parallel: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := minegame.ReplicateExperiment("simw", cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkReplicateSequential(b *testing.B) { benchReplicate(b, 1) }
func BenchmarkReplicateParallel(b *testing.B)   { benchReplicate(b, 0) }

// benchStackelbergGrid solves the two-stage game with heterogeneous
// budgets, forcing the numeric demand oracle so every leader-grid probe
// runs a full follower equilibrium — the price-grid fan-out path.
func benchStackelbergGrid(b *testing.B, workers int) {
	b.Helper()
	cfg := defaultBenchConfig()
	cfg.Budgets = []float64{150, 180, 200, 220, 250}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := minegame.SolveStackelberg(cfg, minegame.StackelbergOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if res.ClosedFormDemand {
			b.Fatal("expected the numeric demand oracle")
		}
	}
}

func BenchmarkStackelbergGridSequential(b *testing.B) { benchStackelbergGrid(b, 1) }
func BenchmarkStackelbergGridParallel(b *testing.B)   { benchStackelbergGrid(b, 0) }
