// Quickstart: configure the default 5-miner network of the paper's
// evaluation, solve the full two-stage Stackelberg game in connected
// mode, and verify the follower profile is a Nash equilibrium.
package main

import (
	"fmt"
	"log"

	"minegame"
)

func main() {
	cfg := minegame.Config{
		N:           5,
		Budgets:     []float64{200}, // homogeneous miners
		Reward:      1000,           // mining reward R
		Beta:        0.2,            // fork rate β from the CSP delay
		SatisfyProb: 0.7,            // h: edge request served locally
		Mode:        minegame.Connected,
		CostE:       2,
		CostC:       1,
	}

	res, err := minegame.SolveStackelberg(cfg, minegame.StackelbergOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equilibrium prices: P_e = %.3f, P_c = %.3f\n", res.Prices.Edge, res.Prices.Cloud)
	fmt.Printf("provider profits:   V_e = %.2f, V_c = %.2f\n", res.ProfitE, res.ProfitC)
	fmt.Printf("aggregate demand:   E = %.2f edge units, C = %.2f cloud units\n",
		res.Follower.EdgeDemand, res.Follower.CloudDemand)
	r := res.Follower.Requests[0]
	fmt.Printf("each miner buys:    e = %.3f, c = %.3f (utility %.2f)\n",
		r.E, r.C, res.Follower.Utilities[0])

	// Certify the follower stage: no miner can gain by deviating.
	if dev := minegame.Deviation(cfg, res.Prices, res.Follower.Requests); dev < 1e-3 {
		fmt.Printf("equilibrium certified: best unilateral gain = %.2g\n", dev)
	} else {
		fmt.Printf("WARNING: profitable deviation of %.4f exists\n", dev)
	}

	// Cross-check against the closed form of Theorem 3 / Corollary 1.
	sol, err := minegame.HomogeneousConnected(cfg.Params(res.Prices), cfg.N, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closed form agrees: e* = %.3f, c* = %.3f\n", sol.Request.E, sol.Request.C)
}
