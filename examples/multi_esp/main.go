// Multi-ESP competition: the library's extension beyond the paper. Two
// edge providers — a reliable premium one and a cheap budget one — fight
// with the cloud for five miners' budgets. Watch demand substitute as the
// budget provider cuts its price.
package main

import (
	"fmt"
	"log"

	"minegame"
)

func main() {
	base := minegame.MultiESPConfig{
		N:      5,
		Budget: 200,
		Reward: 1000,
		Beta:   0.2,
		ESPs: []minegame.MultiESPOffer{
			{Price: 9, H: 0.9}, // premium edge: rarely transfers
			{Price: 7, H: 0.4}, // budget edge: often transfers
		},
		PriceC: 4,
	}

	fmt.Println("budget-ESP price sweep (premium at 9, cloud at 4):")
	fmt.Println("p2     E_premium  E_budget  C_cloud")
	for _, p2 := range []float64{7.5, 6.5, 5.5, 4.5} {
		cfg := base
		cfg.ESPs = []minegame.MultiESPOffer{base.ESPs[0], {Price: p2, H: 0.4}}
		eq, err := minegame.SolveMultiESP(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4.1f   %9.3f  %8.3f  %7.3f\n",
			p2, eq.Demands[0], eq.Demands[1], eq.Demands[2])
	}

	// Sanity: with a single ESP the extension reproduces the paper.
	single := base
	single.ESPs = []minegame.MultiESPOffer{{Price: 8, H: 0.7}}
	eq, err := minegame.SolveMultiESP(single)
	if err != nil {
		log.Fatal(err)
	}
	params := minegame.MinerParams{Reward: 1000, Beta: 0.2, H: 0.7, PriceE: 8, PriceC: 4}
	closed, err := minegame.HomogeneousConnected(params, 5, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nK=1 cross-check: multi-ESP (%.3f, %.3f) vs paper closed form (%.3f, %.3f)\n",
		eq.Requests[0][0], eq.Requests[0][1], closed.Request.E, closed.Request.C)
}
