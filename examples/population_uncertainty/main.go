// Population uncertainty: the paper's §V scenario. Miners do not know
// how many rivals joined this round — the count follows a truncated
// Gaussian. Expected-utility maximizers buy MORE edge units than under a
// fixed population of the same mean, and the effect grows with the
// variance (Fig. 9(b)).
package main

import (
	"fmt"
	"log"

	"minegame"
)

func main() {
	params := minegame.MinerParams{
		Reward: 1000,
		Beta:   0.2,
		H:      0.7,
		PriceE: 8,
		PriceC: 4,
	}
	const (
		mu     = 10
		budget = 200.0
	)

	fixed, err := minegame.SolvePopulationEquilibrium(
		params, minegame.FixedPopulation(mu), budget, minegame.PopulationOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed population N = %d:    e* = %.4f, c* = %.4f\n", mu, fixed.Request.E, fixed.Request.C)

	fmt.Println("\ndynamic population N ~ 𝒩(10, σ²):")
	fmt.Println("sigma   e*       c*       E[N]·e*   vs fixed")
	for _, sigma := range []float64{0.5, 1, 2, 3} {
		pmf, err := minegame.PopulationModel{Mu: mu, Sigma: sigma}.PMF()
		if err != nil {
			log.Fatal(err)
		}
		eq, err := minegame.SolvePopulationEquilibrium(params, pmf, budget, minegame.PopulationOptions{})
		if err != nil {
			log.Fatal(err)
		}
		delta := eq.Request.E - fixed.Request.E
		fmt.Printf("%5.1f  %.4f  %.4f  %8.3f   %+.4f\n",
			sigma, eq.Request.E, eq.Request.C, eq.ExpectedEdgeDemand, delta)
	}
	fmt.Println("\nuncertainty renders miners more aggressive at the ESP — the paper's §V headline")
}
