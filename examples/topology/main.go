// Topology: the full causal chain from the peer-to-peer overlay to the
// mining market. Blocks gossip across a random graph; the overlay's
// density sets the propagation delay, the delay sets the fork rate β,
// and β prices the ESP's only advantage. Densify the network and watch
// the edge market evaporate.
package main

import (
	"fmt"
	"log"

	"minegame"
)

func main() {
	const (
		nodes      = 200
		hopLatency = 18.0 // seconds per gossip hop
		interval   = 600.0
	)
	fmt.Println("chords/node   90% spread    fork rate β   edge demand E")
	for _, degree := range []int{0, 1, 2, 4, 8} {
		overlay, err := minegame.NewGossipNetwork(minegame.GossipConfig{
			Nodes:       nodes,
			Degree:      degree,
			MeanLatency: hopLatency,
		}, 1)
		if err != nil {
			log.Fatal(err)
		}
		d90, err := overlay.PropagationDelay(0.9, 40, minegame.GossipRNG(1))
		if err != nil {
			log.Fatal(err)
		}
		beta := minegame.CollisionCDF(d90, interval)
		if beta > 0.95 {
			beta = 0.95
		}
		cfg := minegame.Config{
			N:           5,
			Budgets:     []float64{200},
			Reward:      1000,
			Beta:        beta,
			SatisfyProb: 0.7,
			Mode:        minegame.Connected,
			CostE:       2,
			CostC:       1,
		}
		eq, err := minegame.SolveMinerEquilibrium(cfg, minegame.Prices{Edge: 8, Cloud: 4}, minegame.NEOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%11d   %9.1f s   %11.4f   %13.2f\n", degree, d90, beta, eq.EdgeDemand)
	}
	fmt.Println("\ndense overlays spread blocks fast, forks vanish, and the ESP's delay premium with them")
}
