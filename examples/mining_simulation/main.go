// Mining simulation: run the proof-of-work substrate directly. A
// five-miner network with mixed edge/cloud hash power mines 20,000
// blocks; cloud-solved blocks risk being beaten by edge-solved rivals
// during their propagation window. The empirical winning shares match
// the paper's Eq. 6 with β interpreted as the edge-conflict probability.
package main

import (
	"fmt"
	"log"

	"minegame"
)

func main() {
	race := minegame.RaceConfig{
		Interval:   600, // Bitcoin-like 10-minute blocks
		CloudDelay: 120, // cloud consensus delay D_avg
		Allocations: []minegame.Allocation{
			{MinerID: 1, Edge: 8, Cloud: 4},  // edge-heavy miner
			{MinerID: 2, Edge: 2, Cloud: 20}, // cloud-heavy miner
			{MinerID: 3, Edge: 5, Cloud: 10},
			{MinerID: 4, Edge: 0, Cloud: 15}, // pure cloud
			{MinerID: 5, Edge: 4, Cloud: 0},  // pure edge
		},
	}
	net, err := minegame.NewMiningNetwork(race, 42)
	if err != nil {
		log.Fatal(err)
	}
	const blocks = 20000
	stats, err := net.Grow(blocks)
	if err != nil {
		log.Fatal(err)
	}
	ledger := net.Ledger()
	fmt.Printf("chain height %d, %d blocks mined in total, %d lost to forks (%.2f%%)\n",
		ledger.Height(), ledger.Len(), ledger.Forks(),
		100*float64(ledger.Forks())/float64(ledger.Len()))
	fmt.Printf("edge-solved winners: %d, cloud-solved winners: %d\n\n", stats.EdgeWins, stats.CloudWins)

	var e, s float64
	profile := make([]minegame.Request, len(race.Allocations))
	for i, a := range race.Allocations {
		e += a.Edge
		s += a.Edge + a.Cloud
		profile[i] = minegame.Request{E: a.Edge, C: a.Cloud}
	}
	beta := minegame.BetaEdge(e, s, race.CloudDelay, race.Interval)
	analytic := minegame.WinProbsFull(beta, profile)
	fmt.Printf("edge-conflict fork rate β = %.4f\n", beta)
	fmt.Println("miner  power(e+c)  empirical W   Eq.6 W")
	for i, a := range race.Allocations {
		fmt.Printf("%5d  %9.1f  %11.4f  %8.4f\n",
			a.MinerID, a.Edge+a.Cloud, stats.WinProb(a.MinerID), analytic[i])
	}
	fmt.Println("\nedge units beat equal cloud units: they never lose a propagation race")
}
