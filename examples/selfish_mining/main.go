// Selfish mining: how robust is the paper's honest-miner assumption?
// Theorem 1's winning probabilities assume every miner publishes blocks
// immediately. This example solves the game's equilibrium, reads off the
// biggest miner's hash share, and compares it with the Eyal–Sirer
// threshold above which strategic withholding would beat honest mining.
package main

import (
	"fmt"
	"log"

	"minegame"
)

func main() {
	cfg := minegame.Config{
		N:           5,
		Budgets:     []float64{200},
		Reward:      1000,
		Beta:        0.2,
		SatisfyProb: 0.7,
		Mode:        minegame.Connected,
		CostE:       2,
		CostC:       1,
	}
	eq, err := minegame.SolveMinerEquilibrium(cfg, minegame.Prices{Edge: 8, Cloud: 4}, minegame.NEOptions{})
	if err != nil {
		log.Fatal(err)
	}
	maxShare := 0.0
	for _, w := range eq.WinProbs {
		if w > maxShare {
			maxShare = w
		}
	}
	const gamma = 0.5
	threshold := minegame.SelfishThreshold(gamma)
	fmt.Printf("equilibrium winning share per miner: %.3f\n", maxShare)
	fmt.Printf("selfish-mining threshold (γ=%.1f):    %.3f\n", gamma, threshold)
	if maxShare < threshold {
		fmt.Println("→ honest mining is self-enforcing at this equilibrium")
	} else {
		fmt.Println("→ WARNING: a miner this large profits from withholding blocks")
	}

	fmt.Println("\npool share α   honest revenue   selfish revenue (sim)   (Eyal–Sirer)")
	for _, alpha := range []float64{0.15, 0.25, 0.35, 0.45} {
		stats, err := minegame.SimulateSelfishMining(minegame.SelfishConfig{
			Alpha:  alpha,
			Gamma:  gamma,
			Blocks: 200000,
		}, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12.2f   %14.2f   %21.4f   %12.4f\n",
			alpha, alpha, stats.RevenueShare(), minegame.SelfishRevenueShare(alpha, gamma))
	}
	fmt.Println("\nabove α ≈ 0.25 the withholding strategy overtakes honest mining")
}
