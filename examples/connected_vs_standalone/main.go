// Connected vs standalone: reproduce the paper's §IV-C comparison of the
// two ESP operation modes on one configuration — the standalone ESP
// charges a higher price and extracts more profit, the total demand is
// unchanged, and the connected mode discourages edge purchases.
package main

import (
	"fmt"
	"log"

	"minegame"
)

func main() {
	cfg := minegame.Config{
		N:            5,
		Budgets:      []float64{1000}, // sufficient budgets (Table II regime)
		Reward:       1000,
		Beta:         0.2,
		SatisfyProb:  0.7,
		EdgeCapacity: 25,
		CostE:        2,
		CostC:        1,
	}
	cmp, err := minegame.CompareModes(cfg, minegame.StackelbergOptions{})
	if err != nil {
		log.Fatal(err)
	}

	row := func(name string, r minegame.StackelbergResult) {
		fmt.Printf("%-11s P_e=%7.3f  P_c=%6.3f  V_e=%8.2f  V_c=%8.2f  E=%7.2f  C=%7.2f\n",
			name, r.Prices.Edge, r.Prices.Cloud, r.ProfitE, r.ProfitC,
			r.Follower.EdgeDemand, r.Follower.CloudDemand)
	}
	fmt.Println("mode        prices                profits              demand")
	row("connected", cmp.Connected)
	row("standalone", cmp.Standalone)

	fmt.Println()
	switch {
	case cmp.Standalone.ProfitE > cmp.Connected.ProfitE:
		fmt.Println("✓ the standalone ESP earns more (capacity rent), as §IV-C concludes")
	default:
		fmt.Println("✗ unexpected: the standalone ESP did not earn more")
	}
	if cmp.Standalone.Prices.Edge > cmp.Connected.Prices.Edge {
		fmt.Println("✓ the standalone ESP charges a higher unit price")
	}

	// At IDENTICAL prices, the connected mode also buys fewer edge units —
	// the "discouraged miners" effect isolated from the pricing stage.
	prices := minegame.Prices{Edge: 8, Cloud: 4}
	conn := cfg
	conn.Mode = minegame.Connected
	alone := cfg
	alone.Mode = minegame.Standalone
	alone.EdgeCapacity = 60 // slack, so the miners' preference shows
	eqC, err := minegame.SolveMinerEquilibrium(conn, prices, minegame.NEOptions{})
	if err != nil {
		log.Fatal(err)
	}
	eqS, err := minegame.SolveMinerEquilibrium(alone, prices, minegame.NEOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat fixed prices (8, 4): connected E = %.2f, standalone E = %.2f, totals %.2f vs %.2f\n",
		eqC.EdgeDemand, eqS.EdgeDemand, eqC.TotalDemand, eqS.TotalDemand)
}
