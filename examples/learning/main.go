// Learning: the paper's §VI-C reinforcement-learning validation. Five
// ε-greedy miners repeatedly choose request vectors from a discretized
// grid, observe their utilities, and converge to the analytic Nash
// equilibrium of the miner subgame without ever seeing the model.
package main

import (
	"fmt"
	"log"

	"minegame"
)

func main() {
	const (
		n      = 5
		budget = 200.0
		reward = 1000.0
		priceE = 8.0
		priceC = 4.0
	)

	// The analytic target (Theorem 3 / Corollary 1).
	params := minegame.MinerParams{Reward: reward, Beta: 0.2, H: 0.7, PriceE: priceE, PriceC: priceC}
	want, err := minegame.HomogeneousConnected(params, n, budget)
	if err != nil {
		log.Fatal(err)
	}

	grid, err := minegame.NewActionGrid(priceE, priceC, budget, 11, 11)
	if err != nil {
		log.Fatal(err)
	}
	env := minegame.ModelEnv{
		Net: minegame.Config{
			N:           n,
			Budgets:     []float64{budget},
			Reward:      reward,
			Beta:        0.2,
			SatisfyProb: 0.7,
			Mode:        minegame.Connected,
			CostE:       2,
			CostC:       1,
		}.Network(minegame.Prices{Edge: priceE, Cloud: priceC}, 600),
		Reward: reward,
	}
	learners := make([]minegame.Learner, n)
	for i := range learners {
		if learners[i], err = minegame.NewEpsilonGreedy(len(grid.Actions), minegame.EpsilonGreedyConfig{SampleAverage: true, Decay: 0.9998, MinEpsilon: 0.02}); err != nil {
			log.Fatal(err)
		}
	}
	tr, err := minegame.NewTrainer(grid, env, minegame.FixedPopulation(n), learners, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analytic equilibrium: e* = %.2f, c* = %.2f\n", want.Request.E, want.Request.C)
	fmt.Println("episodes   learned ē   learned c̄")
	done := 0
	for _, milestone := range []int{2000, 10000, 25000, 50000, 80000} {
		for ; done < milestone; done++ {
			if _, err := tr.Episode(); err != nil {
				log.Fatal(err)
			}
		}
		mean := tr.MeanGreedy()
		fmt.Printf("%8d   %9.3f   %9.3f\n", milestone, mean.E, mean.C)
	}
	mean := tr.MeanGreedy()
	fmt.Printf("\nfinal learned strategy (%.2f, %.2f) vs analytic (%.2f, %.2f) — grid step is (2.5, 5.0)\n",
		mean.E, mean.C, want.Request.E, want.Request.C)
}
